"""ABLATIONS: design choices called out in DESIGN.md, quantified.

Two levers the reproduction adds around the paper's design:

* **identity-probe caching** -- a token's identity is immutable for its
  lifetime, so the introspection probe can be cached per token; this bench
  quantifies the probe savings while asserting verdicts stay identical.
* **model slicing** (the paper's future-work item) -- generating the
  monitor from a slice of the models must cost less while preserving the
  contracts of the sliced scenario.
"""

from repro.core import CloudMonitor, ContractGenerator
from repro.core import cinder_behavior_model, cinder_resource_model
from repro.cloud import PrivateCloud
from repro.uml import slice_models
from repro.validation import TestOracle, default_setup
from repro.workloads import synthetic_models


def _monitored_session(cache_identity):
    cloud = PrivateCloud.paper_setup()
    monitor = CloudMonitor.for_cinder(cloud.network, "myProject",
                                      enforcing=False)
    monitor.provider.cache_identity = cache_identity
    cloud.network.register("cmonitor", monitor.app)
    oracle = TestOracle(cloud, monitor)
    oracle.run()
    return monitor


def test_bench_ablation_identity_cache_off(benchmark):
    monitor = benchmark(_monitored_session, False)
    assert monitor.violations() == []


def test_bench_ablation_identity_cache_on(benchmark):
    monitor = benchmark(_monitored_session, True)
    assert monitor.violations() == []


def test_bench_ablation_identity_cache_probe_savings(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    uncached = _monitored_session(False)
    cached = _monitored_session(True)
    # Same verdicts, fewer probes.
    assert [v.verdict for v in cached.log] == \
        [v.verdict for v in uncached.log]
    saved = uncached.provider.probe_count - cached.provider.probe_count
    assert saved > 0
    print(f"\n[ABLATION] identity cache saves {saved} of "
          f"{uncached.provider.probe_count} probe GETs over the battery "
          f"({saved / uncached.provider.probe_count:.0%})")


def test_bench_ablation_slicing_contract_generation(benchmark):
    """Contract generation on a 1-of-8 slice vs. the full model."""
    full_diagram, full_machine = synthetic_models(8)
    sliced_diagram, sliced_machine = slice_models(
        full_diagram, full_machine, ["c3_item"])

    contracts = benchmark(
        lambda: ContractGenerator(sliced_machine,
                                  sliced_diagram).all_contracts())

    assert len(contracts) == 5
    full_count = len(ContractGenerator(full_machine,
                                       full_diagram).all_contracts())
    print(f"\n[ABLATION] slice generates {len(contracts)} contracts vs "
          f"{full_count} for the full model; sliced contracts are "
          f"byte-identical to their full-model counterparts (asserted in "
          f"tests/uml/test_slicing.py)")


def test_bench_ablation_compiled_contracts_interpreter(benchmark):
    """Contract evaluation cost: tree-walking interpreter."""
    from repro.core import ContractGenerator
    from repro.ocl import Context

    generator = ContractGenerator(cinder_behavior_model(),
                                  cinder_resource_model())
    contract = generator.for_trigger("DELETE(volume)")
    context = Context({
        "project": {"id": "p", "volumes": [{"id": "v1"}, {"id": "v2"}]},
        "quota_sets": {"volumes": 5},
        "volume": {"id": "v1", "status": "available"},
        "user": {"roles": ["admin"]},
    }, strict=False)
    result = benchmark(contract.check_pre, context)
    assert result is True


def test_bench_ablation_compiled_contracts_compiled(benchmark):
    """Contract evaluation cost: compiled closures (same contract/state)."""
    from repro.core import ContractGenerator
    from repro.ocl import Context

    generator = ContractGenerator(cinder_behavior_model(),
                                  cinder_resource_model())
    contract = generator.for_trigger("DELETE(volume)").compile()
    context = Context({
        "project": {"id": "p", "volumes": [{"id": "v1"}, {"id": "v2"}]},
        "quota_sets": {"volumes": 5},
        "volume": {"id": "v1", "status": "available"},
        "user": {"roles": ["admin"]},
    }, strict=False)
    result = benchmark(contract.check_pre, context)
    assert result is True


def test_bench_ablation_compiled_monitor_equivalent(benchmark):
    """A monitor with compiled contracts is verdict-identical."""

    def run_compiled():
        cloud = PrivateCloud.paper_setup()
        monitor = CloudMonitor.for_cinder(cloud.network, "myProject",
                                          enforcing=False, compiled=True)
        cloud.network.register("cmonitor", monitor.app)
        TestOracle(cloud, monitor).run()
        return monitor

    monitor = benchmark(run_compiled)
    assert all(contract.is_compiled
               for contract in monitor.contracts.values())
    reference = _monitored_session(False)
    assert [v.verdict for v in monitor.log] == \
        [v.verdict for v in reference.log]


def test_bench_ablation_sliced_monitor_equivalent(benchmark):
    """A monitor generated from the volume slice behaves identically."""
    diagram, machine = slice_models(
        cinder_resource_model(), cinder_behavior_model(), ["volume"])

    def run_sliced():
        cloud = PrivateCloud.paper_setup()
        monitor = CloudMonitor.for_cinder(
            cloud.network, "myProject", machine=machine, diagram=diagram,
            enforcing=False)
        cloud.network.register("cmonitor", monitor.app)
        TestOracle(cloud, monitor).run()
        return monitor

    monitor = benchmark(run_sliced)
    assert monitor.violations() == []
    reference = _monitored_session(False)
    assert [v.verdict for v in monitor.log] == \
        [v.verdict for v in reference.log]
