"""FIG-2: the monitor workflow end to end (pre -> forward -> post -> verdict).

Paper artifact: Figure 2, "Workflow in Cloud Monitor".  The bench replays
the standard Table-I battery through the monitor and checks the verdict
accounting the figure implies: valid requests pass through, invalid ones
get "an invalid response specifying the faulty behavior", and a correct
cloud never produces a violation verdict.
"""

from repro.core import Verdict
from repro.validation import TestOracle, default_setup, standard_battery


def test_bench_fig2_battery(benchmark):
    def run_battery():
        cloud, monitor = default_setup()
        oracle = TestOracle(cloud, monitor)
        oracle.run()
        return monitor, oracle

    monitor, oracle = benchmark(run_battery)

    assert len(monitor.log) == len(standard_battery())
    assert monitor.violations() == []
    verdicts = [verdict.verdict for verdict in monitor.log]
    assert Verdict.VALID in verdicts
    assert Verdict.INVALID_AGREED in verdicts  # cloud + monitor both deny
    by_name = dict(oracle.results)
    assert by_name["delete-admin"].status_code == 204
    assert by_name["delete-member-denied"].status_code == 403
    histogram = {}
    for verdict in verdicts:
        histogram[verdict] = histogram.get(verdict, 0) + 1
    print(f"\n[FIG-2] verdict histogram over the battery: {histogram}")


def test_bench_fig2_enforcing_blocks_before_cloud(benchmark):
    """Figure 2 proper: requests are forwarded only if the pre holds."""

    def run_enforcing():
        cloud, monitor = default_setup(enforcing=True)
        oracle = TestOracle(cloud, monitor)
        oracle.run()
        return cloud, monitor, oracle

    cloud, monitor, oracle = benchmark(run_enforcing)
    blocked = [verdict for verdict in monitor.log
               if verdict.verdict == Verdict.PRE_BLOCKED]
    assert blocked, "unauthorized battery steps must be blocked"
    assert all(not verdict.forwarded for verdict in blocked)
    by_name = dict(oracle.results)
    assert by_name["post-user-denied"].status_code == 412
    print(f"\n[FIG-2] enforcing mode blocked {len(blocked)} requests "
          f"before they reached the cloud")
