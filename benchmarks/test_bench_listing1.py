"""LISTING-1: regenerate the DELETE(volume) pre/post-conditions.

Paper artifact: Listing 1 -- the contract of DELETE on the volume resource,
combined from the three transitions the method triggers (Section V).  The
bench checks the structure the listing shows (3 disjuncts in the pre,
3 implications with pre() old values in the post, admin-only + not-in-use
conditions) and measures contract-generation cost.
"""

from repro.core import ContractGenerator
from repro.ocl import collect_pre_expressions, parse
from repro.ocl.nodes import Pre


def test_bench_listing1_generate_delete_contract(benchmark, cinder_models):
    diagram, machine = cinder_models
    generator = ContractGenerator(machine, diagram)

    contract = benchmark(generator.for_trigger, "DELETE(volume)")

    # Three transitions combined, as the paper states explicitly.
    assert len(contract.cases) == 3
    # Pre: disjunction; Post: conjunction of implications with old values.
    assert contract.precondition.operator == "or"
    assert contract.postcondition.operator == "and"
    for case in contract.cases:
        assert case.implication.operator == "implies"
        assert isinstance(case.implication.left, Pre)
    assert len(collect_pre_expressions(contract.postcondition)) >= 3

    text = contract.render()
    assert "volume.status <> 'in-use'" in text
    assert "user.roles->includes('admin')" in text
    assert "pre(project.volumes->size())" in text
    # Both blocks parse back as OCL -- the listing is machine-checkable.
    parse(contract.precondition_text())
    parse(contract.postcondition_text())

    print("\n[LISTING-1] regenerated contract:")
    print(text)


def test_bench_listing1_all_contracts(benchmark, cinder_models):
    """Generating every method contract of the Cinder model."""
    diagram, machine = cinder_models
    generator = ContractGenerator(machine, diagram)

    contracts = benchmark(generator.all_contracts)

    assert len(contracts) == 5
    sizes = {str(trigger): len(contract.cases)
             for trigger, contract in contracts.items()}
    assert sizes["DELETE(volume)"] == 3
    assert sizes["POST(volumes)"] == 4
    print(f"\n[LISTING-1] cases per method contract: {sizes}")
