"""OVERHEAD: what the monitor costs per request.

Paper claim (Section V): "We believe this is not computationally expensive
because we do not need to save the copy of the whole resource(s) but only
the values that constitute the guards and invariants ... Usually, this only
requires a few bits of storage per method."

Reproduction: the same seeded workload runs directly against the cloud and
through the monitor; the bench reports the per-request latency of each path
(the monitored path pays the probe GETs plus two OCL evaluations) and the
snapshot size per method, which must stay tens of bytes.
"""

import os
import time

from repro.validation import default_setup
from repro.workloads import (
    WorkloadRunner,
    append_trajectory,
    make_workload,
    measure_overhead_ladder,
)

WORKLOAD = make_workload(60, seed=42)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_scaling.json")


def test_bench_overhead_direct(benchmark):
    def run_direct():
        cloud, monitor = default_setup()
        runner = WorkloadRunner(cloud, monitor)
        return runner.execute(WORKLOAD, monitored=False)

    histogram = benchmark(run_direct)
    assert sum(histogram.values()) == len(WORKLOAD)
    print(f"\n[OVERHEAD] direct run histogram: {histogram}")


def test_bench_overhead_monitored(benchmark):
    def run_monitored():
        cloud, monitor = default_setup()
        runner = WorkloadRunner(cloud, monitor)
        return runner.execute(WORKLOAD, monitored=True)

    histogram = benchmark(run_monitored)
    assert sum(histogram.values()) == len(WORKLOAD)
    print(f"\n[OVERHEAD] monitored run histogram: {histogram}")


def test_bench_overhead_factor_and_snapshot_size(benchmark):
    """The analysis row: overhead factor, probes, and snapshot bytes."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cloud, monitor = default_setup()
    runner = WorkloadRunner(cloud, monitor)

    started = time.perf_counter()
    runner.execute(WORKLOAD, monitored=False)
    direct_elapsed = time.perf_counter() - started

    cloud, monitor = default_setup()
    runner = WorkloadRunner(cloud, monitor)
    started = time.perf_counter()
    runner.execute(WORKLOAD, monitored=True)
    monitored_elapsed = time.perf_counter() - started

    factor = monitored_elapsed / max(direct_elapsed, 1e-9)
    probes_per_request = monitor.provider.probe_count / len(WORKLOAD)
    snapshot_sizes = [verdict.snapshot_bytes for verdict in monitor.log
                      if verdict.snapshot_bytes]
    max_snapshot = max(snapshot_sizes) if snapshot_sizes else 0

    print(f"\n[OVERHEAD] direct:    {direct_elapsed * 1e3:8.2f} ms "
          f"for {len(WORKLOAD)} requests")
    print(f"[OVERHEAD] monitored: {monitored_elapsed * 1e3:8.2f} ms "
          f"({factor:.1f}x, {probes_per_request:.1f} probe GETs/request)")
    print(f"[OVERHEAD] snapshot storage per method: max {max_snapshot} "
          f"bytes (paper: 'a few bits of storage per method')")

    # Shape assertions: the monitor costs a small constant factor (probes
    # + two OCL evaluations), and snapshots stay tiny.
    assert factor < 50, "monitoring must stay a constant-factor overhead"
    assert 0 < max_snapshot <= 64
    assert probes_per_request <= 10


def test_bench_overhead_probe_planning(benchmark):
    """The planning row: probe and latency deltas, plan on vs. off.

    Demand-driven planning must cut the GET probes the monitor pays per
    request while leaving every observable outcome -- verdict rows,
    status histogram, coverage counters -- byte-identical.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def run(probe_planning):
        cloud, monitor = default_setup(probe_planning=probe_planning)
        runner = WorkloadRunner(cloud, monitor)
        started = time.perf_counter()
        histogram = runner.execute(WORKLOAD, monitored=True)
        elapsed = time.perf_counter() - started
        skipped = monitor.obs.metrics.counter(
            "monitor_probes_skipped_total",
            "GET probes the demand-driven plan proved unnecessary").value
        return {
            "histogram": histogram,
            "rows": [verdict.to_dict() for verdict in monitor.log],
            "coverage": {rid: (r.exercised, r.passed, r.failed)
                         for rid, r in monitor.coverage.records.items()},
            "probes": monitor.provider.probe_count,
            "skipped": skipped,
            "elapsed": elapsed,
        }

    unplanned = run(False)
    planned = run(True)

    probes = len(WORKLOAD)
    print(f"\n[OVERHEAD] probes/request unplanned: "
          f"{unplanned['probes'] / probes:5.2f}   planned: "
          f"{planned['probes'] / probes:5.2f}   "
          f"(skipped {planned['skipped']:.0f} GETs)")
    print(f"[OVERHEAD] monitored latency unplanned: "
          f"{unplanned['elapsed'] * 1e3:8.2f} ms   planned: "
          f"{planned['elapsed'] * 1e3:8.2f} ms")

    # Planning only removes probes; every verdict stays byte-identical.
    assert planned["histogram"] == unplanned["histogram"]
    assert planned["rows"] == unplanned["rows"]
    assert planned["coverage"] == unplanned["coverage"]
    assert planned["probes"] < unplanned["probes"]
    assert planned["skipped"] > 0


def test_bench_overhead_sampling_ladder(benchmark):
    """The obs-layer row: 1x/10x/100x volume through a sampled fleet.

    Sampling exists so the observability layer's cost stays bounded as
    volume grows; this ladder drives a Poisson-paced workload through a
    4-shard fleet at 10% sampling and gates the three claims:

    * retained-trace memory stays within the tracer rings at 100x,
    * every non-valid verdict's trace survives sampling on every rung,
    * p99 ``obs_overhead_seconds`` at 100x stays within 2x of 1x (the
      fleet runs on a manual clock, so the histogram counts operations,
      not host speed -- per-request obs cost must not grow with volume).

    The ladder entry is appended to ``BENCH_scaling.json`` so the
    trajectory gate can watch the overhead story across commits.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    entry = measure_overhead_ladder(base=16, factors=(1, 10, 100))

    print("\n[OVERHEAD] volume  retained/bound  decisions "
          "(kept/dropped/forced)  p99 obs")
    for rung in entry["rungs"]:
        decisions = rung["decisions"]
        print(f"[OVERHEAD] {rung['requests']:<7} "
              f"{rung['retained']:>5}/{rung['ring_bound']:<7} "
              f"{decisions.get('kept', 0)}/{decisions.get('dropped', 0)}/"
              f"{decisions.get('forced', 0):<18} "
              f"{rung['overhead_p99']:.6f}s")
    print(f"[OVERHEAD] p99 ratio 100x/1x: {entry['p99_ratio']:.2f} "
          "(gate: <= 2.0)")

    for rung in entry["rungs"]:
        assert sum(rung["decisions"].values()) == rung["begun"], \
            "sampling decisions must reconcile with traces begun"
        assert rung["decisions"].get("dropped", 0) == rung["events_shed"], \
            "every dropped trace sheds exactly its one wide event"
    assert entry["retained_within_bound"], \
        "retained traces exceeded the tracer ring bound"
    assert entry["non_valid_retained"], \
        "a non-valid verdict's trace was sampled away"
    assert entry["p99_ratio"] <= 2.0, \
        "p99 obs overhead grew with volume"

    trajectory = append_trajectory(TRAJECTORY_PATH,
                                   {"timestamp": entry["timestamp"],
                                    "obs_overhead": entry})
    assert trajectory["entries"][-1]["obs_overhead"]["p99_ratio"] \
        == entry["p99_ratio"]
