"""SCALE: generation cost as the design models grow.

Section VI-B flags scalability as the standing challenge of model-driven
approaches.  This bench measures contract generation and code generation
over a family of synthetic models that replicate the Cinder pattern n
times (2n+1 classes, 3n states, 13n transitions) and asserts the costs
grow roughly linearly -- i.e., the pipeline itself is not the bottleneck.
"""

import time

import pytest

from repro.core import ContractGenerator
from repro.core.codegen import generate_project
from repro.workloads import synthetic_models

SIZES = (1, 2, 4, 8, 16)


@pytest.mark.parametrize("size", [1, 4, 16])
def test_bench_scaling_contract_generation(benchmark, size):
    diagram, machine = synthetic_models(size)
    generator = ContractGenerator(machine, diagram)

    contracts = benchmark(generator.all_contracts)

    assert len(contracts) == 5 * size
    print(f"\n[SCALE] n={size}: {len(machine.transitions)} transitions "
          f"-> {len(contracts)} contracts")


@pytest.mark.parametrize("size", [1, 4, 16])
def test_bench_scaling_codegen(benchmark, size):
    diagram, machine = synthetic_models(size)

    project = benchmark(generate_project, f"monitor{size}", diagram, machine)

    views = project[f"monitor{size}/views.py"]
    assert views.count("def ") >= 5 * size
    print(f"\n[SCALE] n={size}: generated views.py has "
          f"{len(views.splitlines())} lines")


def test_bench_scaling_linearity(benchmark):
    """The series the paper's scalability discussion implies: cost vs n."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for size in SIZES:
        diagram, machine = synthetic_models(size)
        generator = ContractGenerator(machine, diagram)
        started = time.perf_counter()
        contracts = generator.all_contracts()
        contract_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        generate_project(f"m{size}", diagram, machine)
        codegen_elapsed = time.perf_counter() - started
        rows.append((size, len(machine.transitions), len(contracts),
                     contract_elapsed, codegen_elapsed))

    print("\n[SCALE] n  transitions  contracts  contract-gen(ms)  "
          "codegen(ms)")
    for size, transitions, contracts, cg, cc in rows:
        print(f"[SCALE] {size:<3} {transitions:>10} {contracts:>10} "
              f"{cg * 1e3:>16.2f} {cc * 1e3:>12.2f}")

    # Shape: cost per transition must not blow up with model size
    # (allowing generous noise for the small absolute times involved).
    small = rows[0]
    large = rows[-1]
    per_transition_small = small[3] / small[1]
    per_transition_large = large[3] / large[1]
    assert per_transition_large < per_transition_small * 10
