"""SCALE: generation cost as the models grow, throughput as shards grow.

Section VI-B flags scalability as the standing challenge of model-driven
approaches.  The first half of this bench measures contract generation
and code generation over a family of synthetic models that replicate the
Cinder pattern n times (2n+1 classes, 3n states, 13n transitions) and
asserts the costs grow roughly linearly -- i.e., the pipeline itself is
not the bottleneck.

The second half measures the *runtime* scaling axis the fleet dispatcher
adds: monitored throughput across a shard ladder against a substrate
with realistic sleep-based probe latency.  The sweep is persisted to
``BENCH_scaling.json`` at the repo root so
``scripts/check_bench_trajectory.py`` can fail the build when multi-shard
throughput regresses across commits.
"""

import os
import time

import pytest

from repro.core import ContractGenerator
from repro.core.codegen import generate_project
from repro.workloads import (
    append_trajectory,
    measure_fleet_throughput,
    scaling_sweep,
    synthetic_models,
)

SIZES = (1, 2, 4, 8, 16)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_scaling.json")


@pytest.mark.parametrize("size", [1, 4, 16])
def test_bench_scaling_contract_generation(benchmark, size):
    diagram, machine = synthetic_models(size)
    generator = ContractGenerator(machine, diagram)

    contracts = benchmark(generator.all_contracts)

    assert len(contracts) == 5 * size
    print(f"\n[SCALE] n={size}: {len(machine.transitions)} transitions "
          f"-> {len(contracts)} contracts")


@pytest.mark.parametrize("size", [1, 4, 16])
def test_bench_scaling_codegen(benchmark, size):
    diagram, machine = synthetic_models(size)

    project = benchmark(generate_project, f"monitor{size}", diagram, machine)

    views = project[f"monitor{size}/views.py"]
    assert views.count("def ") >= 5 * size
    print(f"\n[SCALE] n={size}: generated views.py has "
          f"{len(views.splitlines())} lines")


def test_bench_scaling_linearity(benchmark):
    """The series the paper's scalability discussion implies: cost vs n."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for size in SIZES:
        diagram, machine = synthetic_models(size)
        generator = ContractGenerator(machine, diagram)
        started = time.perf_counter()
        contracts = generator.all_contracts()
        contract_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        generate_project(f"m{size}", diagram, machine)
        codegen_elapsed = time.perf_counter() - started
        rows.append((size, len(machine.transitions), len(contracts),
                     contract_elapsed, codegen_elapsed))

    print("\n[SCALE] n  transitions  contracts  contract-gen(ms)  "
          "codegen(ms)")
    for size, transitions, contracts, cg, cc in rows:
        print(f"[SCALE] {size:<3} {transitions:>10} {contracts:>10} "
              f"{cg * 1e3:>16.2f} {cc * 1e3:>12.2f}")

    # Shape: cost per transition must not blow up with model size
    # (allowing generous noise for the small absolute times involved).
    small = rows[0]
    large = rows[-1]
    per_transition_small = small[3] / small[1]
    per_transition_large = large[3] / large[1]
    assert per_transition_large < per_transition_small * 10


@pytest.mark.parametrize("shards", [1, 4])
def test_bench_scaling_fleet_shape(benchmark, shards):
    """One fleet shape, timed: read-only workload, zero failures."""
    result = benchmark.pedantic(
        measure_fleet_throughput, args=(shards,),
        kwargs={"requests": 48, "latency": 0.002},
        rounds=1, iterations=1)
    assert result["failures"] == 0
    assert result["verdicts"] == 48
    assert sum(result["dispatched"]) == 48
    # Pre-partitioned synthetic tenants spread the load evenly.
    assert max(result["dispatched"]) - min(result["dispatched"]) <= 1
    print(f"\n[SCALE] {shards} shard(s): "
          f"{result['throughput']:.1f} req/s")


def test_bench_scaling_fleet_speedup(benchmark):
    """The acceptance line: >= 2x throughput at 4 shards vs 1.

    Shards overlap their substrate waits (the latency fault really
    sleeps), so 4 shards should approach 4x; the 2x bar leaves headroom
    for scheduling noise on loaded CI machines.  The sweep is appended
    to the persisted trajectory for cross-commit regression tracking.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    entry = scaling_sweep(shard_counts=(1, 2, 4), requests=96,
                          latency=0.002)

    print("\n[SCALE] shards  throughput(req/s)")
    for run in entry["runs"]:
        print(f"[SCALE] {run['shards']:<7} {run['throughput']:>12.1f}")
    print(f"[SCALE] speedup at 4 shards: {entry['speedup']:.2f}x")

    for run in entry["runs"]:
        assert run["failures"] == 0
    assert entry["speedup"] >= 2.0

    trajectory = append_trajectory(TRAJECTORY_PATH, entry)
    assert trajectory["entries"][-1] is not None
    assert trajectory["entries"][-1]["speedup"] == entry["speedup"]
