"""LISTING-2/3: regenerate the Django project files (uml2django).

Paper artifacts: Listing 2 (the DELETE view in views.py) and Listing 3
(the urlpatterns in urls.py), produced by the uml2django tool of Section
VI.  The bench checks both listings' shapes and that the runnable monitor
assembled from the same models dispatches requests.
"""

import ast

from repro.core import CloudMonitor
from repro.core.codegen import generate_project
from repro.rbac import SecurityRequirementsTable
from repro.validation import default_setup


def test_bench_listing23_generate_project(benchmark, cinder_models):
    diagram, machine = cinder_models
    table = SecurityRequirementsTable.paper_table()

    project = benchmark(generate_project, "cmonitor", diagram, machine,
                        table, "http://cinder/v3/myProject")

    views = project["cmonitor/views.py"]
    urls = project["cmonitor/urls.py"]
    # Listing 2 shape.
    assert "def volume(request, volume_id):" in views
    assert "HttpResponseNotAllowed" in views
    assert "def volume_delete(request, volume_id):" in views
    assert "url = 'http://cinder/v3/myProject/volumes/%s' % (volume_id,)" \
        in views
    assert "RequestWithMethod(url, method='DELETE'" in views
    assert "response.code not in (204,)" in views
    assert "SECURITY_REQUIREMENTS = ['1.4']" in views
    # Listing 3 shape.
    assert "urlpatterns = [" in urls
    assert "(?P<volume_id>[^/]+)" in urls
    # All generated python parses.
    for relative_path, content in project.files.items():
        if relative_path.endswith(".py"):
            ast.parse(content)
    total_lines = sum(len(content.splitlines())
                      for content in project.files.values())
    print(f"\n[LISTING-2/3] generated {len(project)} files, "
          f"{total_lines} lines total")


def test_bench_listing23_runnable_monitor_dispatch(benchmark):
    """The runnable monitor built from the same models serves requests."""
    cloud, monitor = default_setup()
    tokens = cloud.paper_tokens()
    bob = cloud.client(tokens["bob"])

    def create_and_get():
        created = bob.post("http://cmonitor/cmonitor/volumes",
                           {"volume": {"name": "bench"}})
        volume_id = created.json()["volume"]["id"]
        fetched = bob.get(f"http://cmonitor/cmonitor/volumes/{volume_id}")
        cloud.cinder.volumes.delete(volume_id)  # keep state flat
        return created, fetched

    created, fetched = benchmark(create_and_get)
    assert created.status_code == 202
    assert fetched.status_code == 200
    assert all(not verdict.violation for verdict in monitor.log)
    print(f"\n[LISTING-2/3] monitor routes: "
          f"{[op.monitor_path for op in monitor.operations]}")
