"""RESILIENCE: the transport layer's cost, and verdict parity under it.

Three questions the resilient transport must answer with numbers:

* what does the wrapper cost on a healthy substrate (no faults, no
  retries -- the overhead-only case)?
* what does absorbing recoverable faults cost (every probe URL fails
  once, retries recover everything)?
* and the correctness anchor the numbers are meaningless without:
  verdicts under recoverable faults are **byte-identical** to the
  fault-free baseline, while an unrecoverable substrate degrades every
  request to ``indeterminate``.
"""

import json

from repro.validation import run_leg
from repro.validation.chaos import (
    recoverable_program,
    unrecoverable_program,
)

COUNT = 30
SEED = 7


def test_bench_resilient_fault_free(benchmark):
    leg = benchmark(run_leg, COUNT, SEED, None)
    assert leg.retries == 0
    assert leg.indeterminate == 0


def test_bench_resilient_recoverable_faults(benchmark):
    leg = benchmark(run_leg, COUNT, SEED, recoverable_program)
    assert leg.retries > 0
    assert leg.indeterminate == 0


def test_bench_resilient_dead_substrate(benchmark):
    leg = benchmark(run_leg, COUNT, SEED, unrecoverable_program)
    assert leg.indeterminate == len(leg.rows)


def test_bench_resilience_verdict_parity(benchmark):
    """Parity report: recoverable faults leave the verdict stream intact."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    baseline = run_leg(COUNT, SEED, None)
    faulted = run_leg(COUNT, SEED, recoverable_program)
    assert faulted.rows == baseline.rows
    dead = run_leg(COUNT, SEED, unrecoverable_program)
    verdicts = {json.loads(row)["verdict"] for row in dead.rows}
    assert verdicts == {"indeterminate"}
    # probe_count ticks once per *logical* probe; the retry attempts live
    # inside the transport, so the fault tax shows up as retries, not as
    # extra probes.
    assert faulted.probe_count == baseline.probe_count
    print(f"\n[RESILIENCE] {len(baseline.rows)} verdicts byte-identical "
          f"under recoverable faults; {faulted.retries:.0f} transport "
          f"retries absorbed over {baseline.probe_count} logical probes; "
          f"dead substrate -> {dead.indeterminate}/{len(dead.rows)} "
          "indeterminate")
