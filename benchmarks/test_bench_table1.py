"""TABLE-I: regenerate the security-requirements table of the paper.

Paper artifact: Table I, "Security requirements for Cinder API (excerpt)".
Our reproduction generates the identical rows from the requirements model
and benchmarks the generation + render cost.
"""

from repro.rbac import SecurityRequirementsTable

#: The exact cell rows of the paper's Table I.
PAPER_ROWS = [
    ("volume", "1.1", "GET", "admin", "proj_administrator"),
    ("", "", "", "member", "service_architect"),
    ("", "", "", "user", "business_analyst"),
    ("", "1.2", "PUT", "admin", "proj_administrator"),
    ("", "", "", "member", "service_architect"),
    ("", "1.3", "POST", "admin", "proj_administrator"),
    ("", "", "", "member", "service_architect"),
    ("", "1.4", "DELETE", "admin", "proj_administrator"),
]


def rendered_rows(text):
    lines = [line for line in text.splitlines()
             if line.startswith("|") and "Resource" not in line]
    return [tuple(cell.strip() for cell in line.strip("|").split("|"))
            for line in lines]


def test_bench_table1_render(benchmark):
    table = SecurityRequirementsTable.paper_table()
    text = benchmark(table.render)
    assert rendered_rows(text) == PAPER_ROWS
    print("\n[TABLE-I] regenerated table matches the paper row-for-row:")
    print(text)


def test_bench_table1_build_and_derive(benchmark):
    """Build the table and derive both downstream artifacts from it."""

    def build():
        table = SecurityRequirementsTable.paper_table()
        return table, table.to_policy(), table.to_guard("volume", "DELETE")

    table, policy, guard = benchmark(build)
    assert policy["volume:delete"] == "role:admin"
    assert policy["volume:get"] == "role:admin or role:member or role:user"
    assert guard == "user.roles->includes('admin')"
    print(f"\n[TABLE-I] derived policy actions: {sorted(policy)}")
    print(f"[TABLE-I] derived DELETE guard: {guard}")
