"""Tests for Request/Response/Headers."""

import pytest

from repro.httpsim import Headers, Request, Response


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers({"Content-Type": "application/json"})
        assert headers.get("content-type") == "application/json"
        assert headers.get("CONTENT-TYPE") == "application/json"

    def test_get_default(self):
        assert Headers().get("X-Missing", "fallback") == "fallback"

    def test_add_keeps_duplicates(self):
        headers = Headers()
        headers.add("Via", "a")
        headers.add("Via", "b")
        assert headers.get_all("via") == ["a", "b"]

    def test_set_replaces_all(self):
        headers = Headers()
        headers.add("Via", "a")
        headers.add("Via", "b")
        headers.set("Via", "c")
        assert headers.get_all("Via") == ["c"]

    def test_remove(self):
        headers = Headers({"X-Auth-Token": "t"})
        headers.remove("x-auth-token")
        assert "X-Auth-Token" not in headers

    def test_remove_missing_is_noop(self):
        headers = Headers()
        headers.remove("nothing")
        assert len(headers) == 0

    def test_contains(self):
        headers = Headers({"Allow": "GET"})
        assert "allow" in headers
        assert "deny" not in headers
        assert 42 not in headers

    def test_equality_ignores_case_and_order(self):
        left = Headers()
        left.add("A", "1")
        left.add("B", "2")
        right = Headers()
        right.add("b", "2")
        right.add("a", "1")
        assert left == right

    def test_copy_is_independent(self):
        original = Headers({"K": "v"})
        clone = original.copy()
        clone.set("K", "other")
        assert original.get("K") == "v"


class TestRequest:
    def test_method_uppercased(self):
        assert Request("delete", "/x").method == "DELETE"

    def test_absolute_url_parsed(self):
        request = Request("GET", "http://cloud/v3/p1/volumes?limit=5")
        assert request.host == "cloud"
        assert request.path == "/v3/p1/volumes"
        assert request.params == {"limit": "5"}

    def test_bare_path(self):
        request = Request("GET", "/volumes")
        assert request.host == ""
        assert request.path == "/volumes"

    def test_url_roundtrip(self):
        request = Request("GET", "http://cloud/a/b?x=1")
        assert request.url == "http://cloud/a/b?x=1"

    def test_json_request(self):
        request = Request.json_request("POST", "/volumes", {"size": 10})
        assert request.json() == {"size": 10}
        assert request.headers.get("Content-Type") == "application/json"

    def test_json_empty_body_is_none(self):
        assert Request("GET", "/x").json() is None

    def test_auth_token(self):
        request = Request("GET", "/x", headers={"X-Auth-Token": "tok-1"})
        assert request.auth_token == "tok-1"
        assert Request("GET", "/x").auth_token is None

    def test_is_safe(self):
        assert Request("GET", "/x").is_safe()
        assert Request("HEAD", "/x").is_safe()
        assert not Request("POST", "/x").is_safe()
        assert not Request("DELETE", "/x").is_safe()

    def test_copy_is_deep_enough(self):
        request = Request.json_request("POST", "http://h/p", {"a": 1})
        request.path_args["id"] = "4"
        clone = request.copy()
        clone.headers.set("X-Extra", "1")
        clone.path_args["id"] = "9"
        assert "X-Extra" not in request.headers
        assert request.path_args["id"] == "4"
        assert clone.json() == {"a": 1}

    def test_repr_mentions_method_and_url(self):
        assert "GET" in repr(Request("get", "http://h/p"))


class TestResponse:
    def test_defaults(self):
        response = Response()
        assert response.status_code == 200
        assert response.ok
        assert response.json() is None

    def test_json_response(self):
        response = Response.json_response({"volumes": []}, 200)
        assert response.json() == {"volumes": []}
        assert response.headers.get("Content-Type") == "application/json"

    def test_error_format_is_openstack_fault(self):
        response = Response.error(403, "policy forbids")
        body = response.json()
        assert body["error"]["code"] == 403
        assert body["error"]["title"] == "Forbidden"
        assert body["error"]["message"] == "policy forbids"

    def test_error_default_message(self):
        assert Response.error(404).json()["error"]["message"] == "Not Found"

    def test_no_content(self):
        response = Response.no_content()
        assert response.status_code == 204
        assert response.body == b""

    def test_method_not_allowed_sets_allow_header(self):
        response = Response.method_not_allowed(("GET", "POST"))
        assert response.status_code == 405
        assert response.headers.get("Allow") == "GET, POST"

    def test_ok_flag(self):
        assert Response(204).ok
        assert not Response(403).ok

    def test_text_decodes(self):
        assert Response(200, b"hello").text == "hello"

    def test_reason(self):
        assert Response(409).reason == "Conflict"

    def test_malformed_json_raises(self):
        with pytest.raises(ValueError):
            Response(200, b"{not json").json()
