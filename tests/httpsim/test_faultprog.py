"""Tests for composable fault programs and Network fault-hook edges."""

from repro.httpsim import (
    Application,
    Compose,
    FailN,
    Flake,
    Garble,
    Latency,
    Network,
    OnRequest,
    Request,
    Response,
    Truncate,
    by_path,
    path,
)
from repro.obs import Observability
from repro.obs.clock import ManualClock


def _echo_app(name="svc"):
    app = Application(name)

    def view(request, **kwargs):
        return Response.json_response({"echo": request.path})

    app.add_route(path("things", view, name="things"))
    app.add_route(path("things/<str:thing_id>", view, name="thing"))
    return app


def _network(with_obs=False):
    obs = Observability(clock=ManualClock()) if with_obs else None
    network = Network(observability=obs)
    network.register("svc", _echo_app())
    return network, obs


def _get(url="http://svc/things"):
    return Request("GET", url)


class TestFailN:
    def test_global_counter_fails_first_n(self):
        network, _ = _network()
        network.inject_fault("svc", FailN(2))
        assert network.send(_get()).status_code == 503
        assert network.send(_get()).status_code == 503
        assert network.send(_get()).status_code == 200

    def test_per_path_counter_fails_each_url_independently(self):
        network, _ = _network()
        network.inject_fault("svc", FailN(1, key=by_path))
        assert network.send(_get("http://svc/things")).status_code == 503
        assert network.send(_get("http://svc/things/a")).status_code == 503
        # Each URL has spent its failure; both now succeed.
        assert network.send(_get("http://svc/things")).status_code == 200
        assert network.send(_get("http://svc/things/a")).status_code == 200

    def test_reset_rearms(self):
        program = FailN(1)
        network, _ = _network()
        network.inject_fault("svc", program)
        assert network.send(_get()).status_code == 503
        assert network.send(_get()).status_code == 200
        program.reset()
        assert network.send(_get()).status_code == 503


class TestFlake:
    def test_seeded_runs_are_identical(self):
        outcomes = []
        for _ in range(2):
            network, _ = _network()
            network.inject_fault("svc", Flake(0.5, seed=9))
            outcomes.append([network.send(_get()).status_code
                             for _ in range(20)])
        assert outcomes[0] == outcomes[1]
        assert 503 in outcomes[0] and 200 in outcomes[0]

    def test_rate_bounds_validated(self):
        import pytest

        with pytest.raises(ValueError):
            Flake(1.5)


class TestAfterHooks:
    def test_garble_replaces_body_keeps_status(self):
        network, _ = _network()
        network.inject_fault("svc", Garble(b"not json"))
        response = network.send(_get())
        assert response.status_code == 200
        assert response.body == b"not json"

    def test_truncate_cuts_the_real_body(self):
        network, _ = _network()
        network.inject_fault("svc", Truncate(keep=5))
        response = network.send(_get())
        assert len(response.body) == 5

    def test_mangled_responses_are_counted(self):
        network, obs = _network(with_obs=True)
        network.inject_fault("svc", Garble())
        network.send(_get())
        assert obs.metrics.counter_value(
            "network_fault_mangled_total", host="svc") == 1


class TestComposition:
    def test_on_request_scopes_a_program(self):
        network, _ = _network()
        network.inject_fault("svc", OnRequest(
            lambda request: request.path.endswith("/a"), FailN(99)))
        assert network.send(_get("http://svc/things")).status_code == 200
        assert network.send(_get("http://svc/things/a")).status_code == 503

    def test_compose_first_short_circuit_wins(self):
        network, _ = _network()
        network.inject_fault("svc", Compose(FailN(1, status=599),
                                            FailN(1, status=503)))
        first = network.send(_get())
        assert first.status_code == 599
        # The second program never saw request 1; it fails request 2.
        assert network.send(_get()).status_code == 503
        assert network.send(_get()).status_code == 200

    def test_compose_folds_after_hooks_in_order(self):
        network, _ = _network()
        network.inject_fault("svc", Compose(Garble(b"0123456789abcdef"),
                                            Truncate(keep=4)))
        response = network.send(_get())
        assert response.body == b"0123"

    def test_compose_reset_resets_all(self):
        inner = FailN(1)
        program = Compose(inner)
        network, _ = _network()
        network.inject_fault("svc", program)
        network.send(_get())
        program.reset()
        assert inner._seen == {}


class TestLatency:
    def test_latency_advances_a_manual_clock(self):
        clock = ManualClock()
        network, _ = _network()
        network.inject_fault("svc", Latency(0.25, clock))
        response = network.send(_get())
        assert response.status_code == 200
        assert clock.now == 0.25


class TestNetworkEdges:
    """The Network edge cases the resilience layer leans on."""

    def test_unknown_host_is_a_502_response_not_an_exception(self):
        network, obs = _network(with_obs=True)
        response = network.send(_get("http://nowhere/things"))
        assert response.status_code == 502
        assert obs.metrics.counter_value(
            "network_unreachable_total", host="nowhere") == 1

    def test_fault_short_circuit_is_counted(self):
        network, obs = _network(with_obs=True)
        network.inject_fault("svc", FailN(1))
        network.send(_get())
        assert obs.metrics.counter_value(
            "network_fault_short_circuits_total", host="svc") == 1
        # The passed-through request is not a short circuit.
        network.send(_get())
        assert obs.metrics.counter_value(
            "network_fault_short_circuits_total", host="svc") == 1

    def test_clear_fault_on_host_with_no_fault_is_a_noop(self):
        network, _ = _network()
        network.clear_fault("svc")  # nothing installed: must not raise
        network.clear_fault("never-registered")
        assert network.send(_get()).status_code == 200

    def test_unregister_drops_the_fault_too(self):
        network, _ = _network()
        network.inject_fault("svc", FailN(99))
        network.unregister("svc")
        network.register("svc", _echo_app())
        assert network.send(_get()).status_code == 200
