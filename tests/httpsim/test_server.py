"""Tests for the real-socket server adapter (http.server bridge)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.httpsim import Application, Response, path, serve


def echo_view(request, **kwargs):
    return Response.json_response({
        "method": request.method,
        "path": request.path,
        "token": request.auth_token,
        "body": request.text,
        "args": {k: str(v) for k, v in kwargs.items()},
    })


@pytest.fixture(scope="module")
def server():
    app = Application("real")
    app.add_route(path("items", echo_view))
    app.add_route(path("items/<int:item_id>", echo_view))
    with serve(app) as running:
        yield running


def http(method, url, body=None, headers=None):
    request = urllib.request.Request(url, data=body, method=method,
                                     headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestRealHTTP:
    def test_get(self, server):
        code, body = http("GET", f"{server.base_url}/items")
        assert code == 200
        assert json.loads(body)["method"] == "GET"

    def test_path_args(self, server):
        code, body = http("GET", f"{server.base_url}/items/42")
        assert json.loads(body)["args"] == {"item_id": "42"}

    def test_post_body(self, server):
        code, body = http("POST", f"{server.base_url}/items",
                          body=b'{"size": 3}',
                          headers={"Content-Type": "application/json"})
        assert code == 200
        assert json.loads(body)["body"] == '{"size": 3}'

    def test_delete(self, server):
        code, body = http("DELETE", f"{server.base_url}/items/4")
        assert json.loads(body)["method"] == "DELETE"

    def test_headers_forwarded(self, server):
        code, body = http("GET", f"{server.base_url}/items",
                          headers={"X-Auth-Token": "tok-real"})
        assert json.loads(body)["token"] == "tok-real"

    def test_404_status(self, server):
        code, _ = http("GET", f"{server.base_url}/nothing")
        assert code == 404

    def test_sequential_requests(self, server):
        for _ in range(5):
            code, _ = http("GET", f"{server.base_url}/items")
            assert code == 200


class TestConcurrentClients:
    def test_parallel_requests_serialized_correctly(self):
        # A counter app with a read-modify-write race window; the server's
        # dispatch lock must keep concurrent clients consistent.
        import threading as _threading

        state = {"count": 0}

        def bump(request):
            current = state["count"]
            state["count"] = current + 1
            return Response.json_response({"count": state["count"]})

        app = Application("counter")
        app.add_route(path("bump", bump))
        with serve(app) as running:
            errors = []

            def worker():
                try:
                    for _ in range(10):
                        code, _body = http("POST",
                                           f"{running.base_url}/bump")
                        assert code == 200
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [_threading.Thread(target=worker) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            assert state["count"] == 80


class TestServerLifecycle:
    def test_ephemeral_port_assigned(self):
        app = Application("x")
        with serve(app) as running:
            assert running.port > 0
            assert str(running.port) in running.base_url

    def test_stop_releases(self):
        app = Application("x")
        app.add_route(path("ping", lambda request: Response(200, b"pong")))
        running = serve(app).start()
        url = f"{running.base_url}/ping"
        code, body = http("GET", url)
        assert body == b"pong"
        running.stop()
        with pytest.raises(Exception):
            http("GET", url)

    def test_stop_raises_when_the_thread_outlives_the_join(self):
        # A thread that survives the join still holds the port; stop()
        # must say so instead of reporting "stopped".  A stub thread
        # avoids waiting out a real 5s join.
        class StuckThread:
            name = "httpsim-stuck"

            def join(self, timeout=None):
                pass

            def is_alive(self):
                return True

        app = Application("x")
        running = serve(app).start()
        running.stop()  # real shutdown: serve_forever has exited
        running._thread = StuckThread()
        with pytest.raises(RuntimeError, match="still alive"):
            running.stop()

    def test_failed_stop_keeps_the_thread_for_a_retry(self):
        class FlakyThread:
            name = "httpsim-flaky"

            def __init__(self):
                self.alive = True

            def join(self, timeout=None):
                pass

            def is_alive(self):
                return self.alive

        app = Application("x")
        running = serve(app).start()
        running.stop()
        stuck = FlakyThread()
        running._thread = stuck
        with pytest.raises(RuntimeError):
            running.stop()
        assert running._thread is stuck
        stuck.alive = False  # the thread finally wound down
        running.stop()
        assert running._thread is None
