"""Tests for the URL router."""

import pytest

from repro.errors import RoutingError
from repro.httpsim import Request, Response, Router, path, re_path


def view(request, **kwargs):
    return Response.json_response(kwargs)


class TestPathPatterns:
    def test_static_path(self):
        route = path("volumes", view)
        assert route.match("volumes") == {}
        assert route.match("volumes/4") is None

    def test_str_converter_default(self):
        route = path("projects/<project_id>", view)
        assert route.match("projects/p1") == {"project_id": "p1"}

    def test_int_converter_casts(self):
        route = path("volumes/<int:vid>", view)
        assert route.match("volumes/42") == {"vid": 42}
        assert route.match("volumes/abc") is None

    def test_multiple_captures(self):
        route = path("v3/<str:pid>/volumes/<int:vid>", view)
        assert route.match("v3/myProject/volumes/4") == {"pid": "myProject", "vid": 4}

    def test_str_does_not_cross_slash(self):
        route = path("projects/<str:pid>", view)
        assert route.match("projects/a/b") is None

    def test_path_converter_crosses_slash(self):
        route = path("files/<path:rest>", view)
        assert route.match("files/a/b/c") == {"rest": "a/b/c"}

    def test_unknown_converter_rejected(self):
        with pytest.raises(RoutingError):
            path("x/<float:y>", view)

    def test_uuid_converter(self):
        route = path("v/<uuid:u>", view)
        assert route.match("v/123e4567-e89b-12d3-a456-426614174000") is not None


class TestRePath:
    def test_regex_route(self):
        route = re_path(r"^cmonitor/volumes/(?P<id>\d+)$", view)
        assert route.match("cmonitor/volumes/4") == {"id": "4"}
        assert route.match("cmonitor/volumes/") is None

    def test_invalid_regex_rejected(self):
        with pytest.raises(RoutingError):
            re_path(r"([unclosed", view)


class TestRouterResolve:
    def make_router(self):
        return Router([
            path("volumes", view, name="volumes", methods=["GET", "POST"]),
            path("volumes/<int:vid>", view, name="volume"),
        ])

    def test_first_match_wins(self):
        router = Router([
            path("volumes", lambda r: Response(200, b"first"), name="a"),
            path("volumes", lambda r: Response(200, b"second"), name="b"),
        ])
        route, error = router.resolve(Request("GET", "/volumes"))
        assert error is None
        assert route.name == "a"

    def test_resolve_populates_path_args(self):
        router = self.make_router()
        request = Request("GET", "/volumes/7")
        route, error = router.resolve(request)
        assert error is None
        assert request.path_args == {"vid": "7"}
        assert request.context["route_args"] == {"vid": 7}

    def test_no_match_is_404(self):
        router = self.make_router()
        _, error = router.resolve(Request("GET", "/servers"))
        assert error.status_code == 404

    def test_method_restriction_is_405_with_allow(self):
        router = self.make_router()
        _, error = router.resolve(Request("DELETE", "/volumes"))
        assert error.status_code == 405
        assert "GET" in error.headers.get("Allow")

    def test_later_route_can_allow_method(self):
        router = Router([
            path("volumes", view, methods=["GET"]),
            path("volumes", view, name="writer", methods=["POST"]),
        ])
        route, error = router.resolve(Request("POST", "/volumes"))
        assert error is None
        assert route.name == "writer"

    def test_leading_slash_optional_in_patterns(self):
        router = Router([path("/volumes", view, name="abs")])
        route, error = router.resolve(Request("GET", "/volumes"))
        assert error is None
        assert route.name == "abs"


class TestReverse:
    def test_reverse_static(self):
        router = Router([path("volumes", view, name="volumes")])
        assert router.reverse("volumes") == "/volumes"

    def test_reverse_with_args(self):
        router = Router([path("v3/<str:pid>/volumes/<int:vid>", view, name="volume")])
        assert router.reverse("volume", pid="p1", vid=4) == "/v3/p1/volumes/4"

    def test_reverse_missing_arg_raises(self):
        router = Router([path("volumes/<int:vid>", view, name="volume")])
        with pytest.raises(RoutingError):
            router.reverse("volume")

    def test_reverse_unknown_name_raises(self):
        with pytest.raises(RoutingError):
            Router().reverse("nothing")


class TestRouterContainer:
    def test_len_and_iter(self):
        router = Router([path("a", view), path("b", view)])
        assert len(router) == 2
        assert [r.pattern for r in router] == ["a", "b"]

    def test_extend(self):
        router = Router()
        router.extend([path("a", view), path("b", view)])
        assert len(router) == 2
