"""Tests for the HTTP status registry."""

from repro.httpsim import status as st


class TestReasonPhrases:
    def test_ok(self):
        assert st.reason_phrase(200) == "OK"

    def test_no_content(self):
        assert st.reason_phrase(204) == "No Content"

    def test_forbidden(self):
        assert st.reason_phrase(403) == "Forbidden"

    def test_unknown_code(self):
        assert st.reason_phrase(299) == "Unknown"

    def test_constants_match_registry(self):
        assert st.OK == 200
        assert st.NO_CONTENT == 204
        assert st.FORBIDDEN == 403
        assert st.NOT_FOUND == 404
        assert st.METHOD_NOT_ALLOWED == 405


class TestClassPredicates:
    def test_success_range(self):
        assert st.is_success(200)
        assert st.is_success(204)
        assert not st.is_success(199)
        assert not st.is_success(300)

    def test_client_error_range(self):
        assert st.is_client_error(400)
        assert st.is_client_error(499)
        assert not st.is_client_error(500)

    def test_server_error_range(self):
        assert st.is_server_error(500)
        assert not st.is_server_error(400)

    def test_is_error_covers_both(self):
        assert st.is_error(404)
        assert st.is_error(503)
        assert not st.is_error(201)

    def test_redirect_and_informational(self):
        assert st.is_redirect(302)
        assert st.is_informational(100)
        assert not st.is_redirect(200)

    def test_indicates_existence_follows_paper_semantics(self):
        # Paper IV-B: GET 200 => resource exists; 404/403 => cannot infer.
        assert st.indicates_existence(200)
        assert not st.indicates_existence(404)
        assert not st.indicates_existence(403)
