"""Tests for Application dispatch, middleware, Network, and clients."""

from repro.httpsim import (
    Application,
    AppClient,
    Client,
    ContentTypeMiddleware,
    Middleware,
    Network,
    Request,
    RequestLogMiddleware,
    Response,
    path,
)


def ok_view(request, **kwargs):
    return Response.json_response({"args": kwargs})


def boom_view(request, **kwargs):
    raise RuntimeError("exploded")


def make_app(debug=False):
    app = Application("svc", debug=debug)
    app.add_routes([
        path("items", ok_view, name="items"),
        path("items/<int:item_id>", ok_view, name="item"),
        path("boom", boom_view, name="boom"),
    ])
    return app


class TestApplicationDispatch:
    def test_basic_dispatch(self):
        response = make_app().get("/items/3")
        assert response.status_code == 200
        assert response.json() == {"args": {"item_id": 3}}

    def test_404(self):
        assert make_app().get("/nothing").status_code == 404

    def test_view_exception_becomes_500(self):
        response = make_app().get("/boom")
        assert response.status_code == 500
        assert "exploded" in response.text

    def test_debug_mode_includes_traceback(self):
        response = make_app(debug=True).get("/boom")
        assert "Traceback" in response.text

    def test_post_serializes_payload(self):
        app = Application("svc")
        app.add_route(path("echo", lambda req: Response(200, req.body)))
        response = app.post("/echo", {"k": "v"})
        assert response.json() == {"k": "v"}

    def test_put_and_delete_helpers(self):
        app = make_app()
        assert app.put("/items/1", {"x": 1}).status_code == 200
        assert app.delete("/items/1").status_code == 200


class TestMiddleware:
    def test_short_circuit_skips_view(self):
        class Deny(Middleware):
            def process_request(self, request):
                return Response.error(401, "no token")

        app = make_app()
        app.add_middleware(Deny())
        assert app.get("/items").status_code == 401

    def test_response_processing_order_is_reversed(self):
        order = []

        class Tag(Middleware):
            def __init__(self, label):
                self.label = label

            def process_request(self, request):
                order.append(("in", self.label))
                return None

            def process_response(self, request, response):
                order.append(("out", self.label))
                return response

        app = make_app()
        app.add_middleware(Tag("outer"))
        app.add_middleware(Tag("inner"))
        app.get("/items")
        assert order == [("in", "outer"), ("in", "inner"),
                         ("out", "inner"), ("out", "outer")]

    def test_short_circuit_unwinds_through_entered_layers_only(self):
        seen = []

        class Outer(Middleware):
            def process_response(self, request, response):
                seen.append("outer")
                return response

        class Blocker(Middleware):
            def process_request(self, request):
                return Response.error(403)

        class Inner(Middleware):
            def process_response(self, request, response):
                seen.append("inner")
                return response

        app = make_app()
        app.add_middleware(Outer())
        app.add_middleware(Blocker())
        app.add_middleware(Inner())
        response = app.get("/items")
        assert response.status_code == 403
        assert seen == ["outer"]

    def test_request_log_middleware_records(self):
        log = RequestLogMiddleware()
        app = make_app()
        app.add_middleware(log)
        app.get("/items")
        app.get("/missing")
        assert log.count == 2
        methods = [record[0] for record in log.records]
        statuses = [record[2] for record in log.records]
        assert methods == ["GET", "GET"]
        assert statuses == [200, 404]
        log.clear()
        assert log.count == 0

    def test_content_type_middleware_rejects_non_json_write(self):
        app = make_app()
        app.add_middleware(ContentTypeMiddleware())
        request = Request("POST", "/items", body=b"id=4")
        assert app.handle(request).status_code == 415

    def test_content_type_middleware_allows_json(self):
        app = make_app()
        app.add_middleware(ContentTypeMiddleware())
        assert app.post("/items", {"a": 1}).status_code == 200

    def test_content_type_middleware_ignores_get(self):
        app = make_app()
        app.add_middleware(ContentTypeMiddleware())
        assert app.get("/items").status_code == 200


class TestNetwork:
    def test_send_routes_by_host(self):
        network = Network()
        network.register("cloud", make_app())
        response = network.send(Request("GET", "http://cloud/items"))
        assert response.status_code == 200

    def test_unknown_host_is_502(self):
        response = Network().send(Request("GET", "http://nowhere/items"))
        assert response.status_code == 502

    def test_fault_hook_replaces_response(self):
        network = Network()
        network.register("cloud", make_app())
        network.inject_fault("cloud", lambda request: Response.error(503, "maintenance"))
        response = network.send(Request("GET", "http://cloud/items"))
        assert response.status_code == 503

    def test_fault_hook_passthrough(self):
        network = Network()
        network.register("cloud", make_app())
        network.inject_fault("cloud", lambda request: None)
        assert network.send(Request("GET", "http://cloud/items")).status_code == 200

    def test_clear_fault(self):
        network = Network()
        network.register("cloud", make_app())
        network.inject_fault("cloud", lambda request: Response.error(503))
        network.clear_fault("cloud")
        assert network.send(Request("GET", "http://cloud/items")).status_code == 200

    def test_unregister(self):
        network = Network()
        network.register("cloud", make_app())
        network.unregister("cloud")
        assert network.send(Request("GET", "http://cloud/items")).status_code == 502

    def test_hosts_listing(self):
        network = Network()
        network.register("b", make_app())
        network.register("a", make_app())
        assert network.hosts() == ["a", "b"]


class TestNetworkRegressions:
    """Edge cases around fault hooks, unregistration, and metrics."""

    def _observed_network(self):
        from repro.obs import ManualClock, Observability

        network = Network()
        obs = Observability(clock=ManualClock())
        network.attach_observability(obs)
        return network, obs

    def test_fault_hook_returning_none_reaches_app_not_counter(self):
        network, obs = self._observed_network()
        network.register("cloud", make_app())
        network.inject_fault("cloud", lambda request: None)
        response = network.send(Request("GET", "http://cloud/items"))
        assert response.status_code == 200
        assert obs.metrics.counter_value(
            "network_fault_short_circuits_total", host="cloud") == 0
        assert obs.metrics.counter_value(
            "network_requests_total", host="cloud") == 1

    def test_unregister_clears_fault_hook(self):
        network = Network()
        network.register("cloud", make_app())
        network.inject_fault("cloud", lambda request: Response.error(503))
        network.unregister("cloud")
        # Re-registering the host must not resurrect the stale hook.
        network.register("cloud", make_app())
        response = network.send(Request("GET", "http://cloud/items"))
        assert response.status_code == 200

    def test_unknown_host_502_increments_unreachable_counter(self):
        network, obs = self._observed_network()
        response = network.send(Request("GET", "http://nowhere/items"))
        assert response.status_code == 502
        assert obs.metrics.counter_value(
            "network_unreachable_total", host="nowhere") == 1
        assert obs.metrics.counter_value(
            "network_requests_total", host="nowhere") == 1

    def test_fault_short_circuit_counted(self):
        network, obs = self._observed_network()
        network.register("cloud", make_app())
        network.inject_fault(
            "cloud", lambda request: Response.error(503, "maintenance"))
        assert network.send(Request("GET", "http://cloud/items")).status_code == 503
        assert obs.metrics.counter_value(
            "network_fault_short_circuits_total", host="cloud") == 1

    def test_send_without_observability_records_nothing(self):
        network = Network()
        network.register("cloud", make_app())
        assert network.observability is None
        assert network.send(Request("GET", "http://cloud/items")).status_code == 200


class TestClients:
    def test_network_client(self):
        network = Network()
        network.register("cloud", make_app())
        client = Client(network)
        assert client.get("http://cloud/items").status_code == 200
        assert len(client.history) == 1

    def test_app_client_accepts_bare_paths(self):
        client = AppClient(make_app())
        assert client.get("/items/9").json() == {"args": {"item_id": 9}}

    def test_authenticate_sets_token_header(self):
        app = Application("svc")
        app.add_route(path(
            "whoami", lambda req: Response.json_response({"token": req.auth_token})))
        client = AppClient(app)
        client.authenticate("tok-42")
        assert client.get("/whoami").json() == {"token": "tok-42"}

    def test_per_request_headers_override_defaults(self):
        app = Application("svc")
        app.add_route(path(
            "whoami", lambda req: Response.json_response({"token": req.auth_token})))
        client = AppClient(app, default_headers={"X-Auth-Token": "default"})
        response = client.get("/whoami", headers={"X-Auth-Token": "special"})
        assert response.json() == {"token": "special"}

    def test_params_merged(self):
        app = Application("svc")
        app.add_route(path(
            "search", lambda req: Response.json_response(req.params)))
        client = AppClient(app)
        assert client.get("/search", params={"limit": 5}).json() == {"limit": "5"}

    def test_history_and_clear(self):
        client = AppClient(make_app())
        client.get("/items")
        client.delete("/items/1")
        assert [req.method for req, _ in client.history] == ["GET", "DELETE"]
        client.clear_history()
        assert client.history == []
