"""Tests for the cURL-style command interface."""

import pytest

from repro.httpsim import Application, CurlError, Network, Request, Response, curl, form_data, path


def echo_view(request, **kwargs):
    return Response.json_response({
        "method": request.method,
        "path": request.path,
        "body": request.text,
        "content_type": request.headers.get("Content-Type"),
        "token": request.auth_token,
        "args": {k: str(v) for k, v in kwargs.items()},
    })


@pytest.fixture()
def network():
    app = Application("cmonitor")
    app.add_route(path("cmonitor/volumes/<int:vid>", echo_view))
    app.add_route(path("cmonitor/volumes", echo_view))
    net = Network()
    net.register("127.0.0.1:8000", app)
    return net


class TestCurlParsing:
    def test_paper_command(self, network):
        # The exact invocation from Section VI of the paper.
        response = curl(
            network,
            "curl -X DELETE -d id=4 http://127.0.0.1:8000/cmonitor/volumes/4",
        )
        body = response.json()
        assert body["method"] == "DELETE"
        assert body["args"] == {"vid": "4"}
        assert body["body"] == "id=4"

    def test_leading_curl_word_optional(self, network):
        response = curl(network, "-X GET http://127.0.0.1:8000/cmonitor/volumes")
        assert response.json()["method"] == "GET"

    def test_default_method_get(self, network):
        response = curl(network, "http://127.0.0.1:8000/cmonitor/volumes")
        assert response.json()["method"] == "GET"

    def test_data_defaults_to_post(self, network):
        response = curl(network, "-d id=4 http://127.0.0.1:8000/cmonitor/volumes")
        assert response.json()["method"] == "POST"

    def test_multiple_data_items_joined(self, network):
        response = curl(
            network, "-d a=1 -d b=2 http://127.0.0.1:8000/cmonitor/volumes")
        assert response.json()["body"] == "a=1&b=2"

    def test_json_body_content_type_detected(self, network):
        response = curl(
            network,
            "curl -X POST -d '{\"size\": 10}' http://127.0.0.1:8000/cmonitor/volumes",
        )
        assert response.json()["content_type"] == "application/json"

    def test_form_content_type_default(self, network):
        response = curl(network, "-d id=4 http://127.0.0.1:8000/cmonitor/volumes")
        assert response.json()["content_type"] == "application/x-www-form-urlencoded"

    def test_header_option(self, network):
        response = curl(
            network,
            "-H 'X-Auth-Token: tok-9' http://127.0.0.1:8000/cmonitor/volumes",
        )
        assert response.json()["token"] == "tok-9"

    def test_silent_flags_ignored(self, network):
        response = curl(network, "-s -i http://127.0.0.1:8000/cmonitor/volumes")
        assert response.status_code == 200


class TestCurlErrors:
    def test_no_url(self, network):
        with pytest.raises(CurlError):
            curl(network, "curl -X GET")

    def test_two_urls(self, network):
        with pytest.raises(CurlError):
            curl(network, "http://a/x http://b/y")

    def test_unsupported_option(self, network):
        with pytest.raises(CurlError):
            curl(network, "--compressed http://127.0.0.1:8000/cmonitor/volumes")

    def test_dangling_x(self, network):
        with pytest.raises(CurlError):
            curl(network, "curl -X")

    def test_dangling_header(self, network):
        with pytest.raises(CurlError):
            curl(network, "curl -H")

    def test_unknown_host_gives_502(self, network):
        assert curl(network, "http://other/x").status_code == 502


class TestFormData:
    def test_urlencoded(self):
        request = Request(
            "POST", "/x",
            headers={"Content-Type": "application/x-www-form-urlencoded"},
            body=b"id=4&name=vol",
        )
        assert form_data(request) == {"id": "4", "name": "vol"}

    def test_json_dict(self):
        request = Request.json_request("POST", "/x", {"id": 4})
        assert form_data(request) == {"id": "4"}

    def test_json_non_dict_is_empty(self):
        request = Request.json_request("POST", "/x", [1, 2])
        assert form_data(request) == {}
