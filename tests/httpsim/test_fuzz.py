"""Fuzzing the HTTP substrate: router paths and curl command lines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.httpsim import (
    Application,
    CurlError,
    Network,
    Request,
    Response,
    curl,
    path,
)


def make_network():
    app = Application("svc")
    app.add_routes([
        path("items", lambda request: Response.json_response({"ok": 1})),
        path("items/<int:item_id>",
             lambda request, item_id: Response.json_response(
                 {"id": item_id})),
    ])
    network = Network()
    network.register("h", app)
    return network


class TestRouterFuzz:
    @given(st.text(max_size=100))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_paths_yield_http_responses(self, raw_path):
        network = make_network()
        response = network.send(Request("GET", f"http://h/{raw_path}"))
        assert 200 <= response.status_code < 600
        # A routing miss is a 404, never a crash-500.
        assert response.status_code != 500

    @given(st.sampled_from(["GET", "POST", "PUT", "DELETE", "PATCH",
                            "OPTIONS", "HEAD"]),
           st.text(max_size=50))
    @settings(max_examples=200, deadline=None)
    def test_any_method_any_path(self, method, raw_path):
        network = make_network()
        response = network.send(Request(method, f"http://h/{raw_path}"))
        assert response.status_code != 500


class TestCurlFuzz:
    @given(st.text(max_size=80))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_command_lines(self, command):
        network = make_network()
        try:
            response = curl(network, command)
            assert 200 <= response.status_code < 600
        except CurlError:
            pass

    def test_unbalanced_quote_is_curl_error(self):
        import pytest

        with pytest.raises(CurlError):
            curl(make_network(), "curl 'http://h/items")

    @given(st.lists(st.sampled_from(
        ["-X", "GET", "POST", "-d", "a=1", "-H", "K: v", "http://h/items",
         "-s", "--bogus", "'", '"']), max_size=8).map(" ".join))
    @settings(max_examples=300, deadline=None)
    def test_option_soup(self, command):
        network = make_network()
        try:
            curl(network, command)
        except CurlError:
            pass
