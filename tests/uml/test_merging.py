"""Tests for merging model parts (the inverse of slicing)."""

import pytest

from repro.errors import ModelError
from repro.core import cinder_behavior_model, cinder_resource_model
from repro.uml import (
    Attribute,
    ClassDiagram,
    ResourceClass,
    State,
    StateMachine,
    merge_class_diagrams,
    merge_models,
    merge_state_machines,
    slice_models,
    slice_state_machine,
)
from repro.workloads import synthetic_models


class TestMergeDiagrams:
    def test_disjoint_union(self):
        left = ClassDiagram("l")
        left.add_class(ResourceClass("a", [Attribute("id")]))
        right = ClassDiagram("r")
        right.add_class(ResourceClass("b", [Attribute("id")]))
        merged = merge_class_diagrams([left, right])
        assert set(merged.classes) == {"a", "b"}

    def test_identical_overlap_deduplicated(self):
        part = cinder_resource_model()
        merged = merge_class_diagrams([part, cinder_resource_model()])
        assert list(merged.classes) == list(part.classes)
        assert merged.associations == part.associations

    def test_conflicting_class_rejected(self):
        left = ClassDiagram("l")
        left.add_class(ResourceClass("a", [Attribute("id")]))
        right = ClassDiagram("r")
        right.add_class(ResourceClass("a", [Attribute("id"),
                                            Attribute("extra")]))
        with pytest.raises(ModelError):
            merge_class_diagrams([left, right])


class TestMergeMachines:
    def test_identical_overlap_deduplicated(self):
        machine = cinder_behavior_model()
        merged = merge_state_machines([machine, cinder_behavior_model()])
        assert list(merged.states) == list(machine.states)
        assert merged.transitions == machine.transitions

    def test_initial_from_first_part(self):
        machine = cinder_behavior_model()
        delete_slice = slice_state_machine(machine, methods=["DELETE"])
        post_slice = slice_state_machine(machine, methods=["POST"])
        merged = merge_state_machines([post_slice, delete_slice])
        assert merged.initial_state().name == \
            machine.initial_state().name

    def test_explicit_initial(self):
        machine = cinder_behavior_model()
        merged = merge_state_machines(
            [machine], initial="project_with_volume_and_full_quota")
        assert merged.initial_state().name == \
            "project_with_volume_and_full_quota"

    def test_unknown_initial_rejected(self):
        with pytest.raises(ModelError):
            merge_state_machines([cinder_behavior_model()], initial="ghost")

    def test_conflicting_invariants_rejected(self):
        left = StateMachine("l")
        left.add_state(State("s", "x = 1", is_initial=True))
        right = StateMachine("r")
        right.add_state(State("s", "x = 2", is_initial=True))
        with pytest.raises(ModelError):
            merge_state_machines([left, right])


class TestSliceMergeRoundTrip:
    def test_per_resource_slices_merge_back_to_full_model(self):
        full_diagram, full_machine = synthetic_models(3)
        parts = [
            slice_models(full_diagram, full_machine, [f"c{i}_item"])
            for i in range(3)
        ]
        merged_diagram, merged_machine = merge_models(
            parts, initial=full_machine.initial_state().name)
        assert set(merged_diagram.classes) == set(full_diagram.classes)
        assert set(merged_machine.states) == set(full_machine.states)
        assert sorted(map(repr, merged_machine.transitions)) == \
            sorted(map(repr, full_machine.transitions))

    def test_merged_contracts_equal_full_model_contracts(self):
        from repro.core import ContractGenerator

        full_diagram, full_machine = synthetic_models(2)
        parts = [
            slice_models(full_diagram, full_machine, [f"c{i}_item"])
            for i in range(2)
        ]
        merged_diagram, merged_machine = merge_models(
            parts, initial=full_machine.initial_state().name)
        for trigger in full_machine.triggers():
            full = ContractGenerator(full_machine,
                                     full_diagram).for_trigger(trigger)
            merged = ContractGenerator(merged_machine,
                                       merged_diagram).for_trigger(trigger)
            assert merged.precondition == full.precondition
            assert merged.postcondition == full.postcondition

    def test_method_slices_merge_back(self):
        machine = cinder_behavior_model()
        parts = [slice_state_machine(machine, methods=[method])
                 for method in ("GET", "PUT", "POST", "DELETE")]
        merged = merge_state_machines(
            parts, initial=machine.initial_state().name)
        assert set(merged.states) == set(machine.states)
        assert len(merged.transitions) == len(machine.transitions)
