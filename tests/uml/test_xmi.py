"""Tests for XMI serialization round trips."""

import pytest

from repro.errors import XMIError
from repro.uml import (
    MANY,
    Association,
    Attribute,
    ClassDiagram,
    Multiplicity,
    ResourceClass,
    State,
    StateMachine,
    Transition,
    read_xmi,
    read_xmi_file,
    write_xmi,
    write_xmi_file,
)

from .test_classdiagram import cinder_diagram
from .test_statemachine import project_machine


class TestRoundTrip:
    def test_class_diagram_round_trip(self):
        original = cinder_diagram()
        document = write_xmi(diagram=original)
        parsed, machine = read_xmi(document)
        assert machine is None
        assert list(parsed.classes) == list(original.classes)
        for name in original.classes:
            assert parsed.get_class(name) == original.get_class(name)
        assert parsed.associations == original.associations

    def test_state_machine_round_trip(self):
        original = project_machine()
        document = write_xmi(machine=original)
        diagram, parsed = read_xmi(document)
        assert diagram is None
        assert list(parsed.states) == list(original.states)
        for name in original.states:
            assert parsed.get_state(name) == original.get_state(name)
        assert parsed.transitions == original.transitions

    def test_combined_round_trip(self):
        document = write_xmi(cinder_diagram(), project_machine(), "Cinder")
        diagram, machine = read_xmi(document)
        assert diagram is not None
        assert machine is not None
        assert diagram.name == "Cinder"

    def test_initial_state_preserved(self):
        document = write_xmi(machine=project_machine())
        _, parsed = read_xmi(document)
        assert parsed.initial_state().name == "project_with_no_volume"

    def test_security_requirements_preserved(self):
        document = write_xmi(machine=project_machine())
        _, parsed = read_xmi(document)
        assert parsed.security_requirement_ids() == ["1.3", "1.4"]

    def test_invariants_preserved_verbatim(self):
        document = write_xmi(machine=project_machine())
        _, parsed = read_xmi(document)
        state = parsed.get_state("project_with_no_volume")
        assert state.invariant == (
            "project.id->size()=1 and project.volumes->size()=0")

    def test_file_round_trip(self, tmp_path):
        target = tmp_path / "cinder.xmi"
        write_xmi_file(str(target), cinder_diagram(), project_machine())
        diagram, machine = read_xmi_file(str(target))
        assert diagram.name == "Cinder"
        assert machine.name == "project_behavior"

    def test_uri_paths_survive_round_trip(self):
        document = write_xmi(diagram=cinder_diagram())
        parsed, _ = read_xmi(document)
        assert parsed.uri_paths() == cinder_diagram().uri_paths()

    def test_double_round_trip_is_stable(self):
        once = write_xmi(cinder_diagram(), project_machine())
        diagram, machine = read_xmi(once)
        twice = write_xmi(diagram, machine)
        assert read_xmi(twice)[0].associations == diagram.associations


class TestErrorHandling:
    def test_malformed_document(self):
        with pytest.raises(XMIError):
            read_xmi("<not xml")

    def test_missing_model_element(self):
        with pytest.raises(XMIError):
            read_xmi("<?xml version='1.0'?><root/>")

    def test_missing_file(self):
        with pytest.raises(XMIError):
            read_xmi_file("/nonexistent/path.xmi")

    def test_empty_document_yields_nothing(self):
        document = write_xmi()
        diagram, machine = read_xmi(document)
        assert diagram is None
        assert machine is None


class TestEdgeCases:
    def test_machine_without_initial(self):
        machine = StateMachine("m")
        machine.add_state(State("only", "true"))
        document = write_xmi(machine=machine)
        _, parsed = read_xmi(document)
        assert parsed.initial_state() is None

    def test_singleton_association_multiplicity(self):
        diagram = ClassDiagram("d")
        diagram.add_class(ResourceClass("a", [Attribute("id")]))
        diagram.add_class(ResourceClass("b", [Attribute("id")]))
        diagram.add_association(Association("a", "b", "bs", Multiplicity(1, 1)))
        document = write_xmi(diagram=diagram)
        parsed, _ = read_xmi(document)
        assert parsed.associations[0].multiplicity == Multiplicity(1, 1)

    def test_many_multiplicity(self):
        diagram = ClassDiagram("d")
        diagram.add_class(ResourceClass("a", [Attribute("id")]))
        diagram.add_class(ResourceClass("b", [Attribute("id")]))
        diagram.add_association(Association("a", "b", "bs", Multiplicity(2, MANY)))
        parsed, _ = read_xmi(write_xmi(diagram=diagram))
        assert parsed.associations[0].multiplicity == Multiplicity(2, MANY)

    def test_transition_without_guard_defaults_true(self):
        machine = StateMachine("m")
        machine.add_state(State("a", is_initial=True))
        machine.add_transition(Transition("a", "a", "GET(x)"))
        _, parsed = read_xmi(write_xmi(machine=machine))
        assert parsed.transitions[0].guard == "true"

    def test_special_characters_in_ocl_escaped(self):
        machine = StateMachine("m")
        machine.add_state(State(
            "a", "volume.status <> 'in-use' and x < 3", is_initial=True))
        _, parsed = read_xmi(write_xmi(machine=machine))
        assert parsed.get_state("a").invariant == (
            "volume.status <> 'in-use' and x < 3")
