"""Property-based tests for UML model structures and XMI round trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uml import (
    MANY,
    Association,
    Attribute,
    ClassDiagram,
    Multiplicity,
    ResourceClass,
    State,
    StateMachine,
    Transition,
    read_xmi,
    write_xmi,
)

_multiplicities = st.one_of(
    st.tuples(st.integers(min_value=0, max_value=5),
              st.integers(min_value=0, max_value=9)).map(
        lambda t: Multiplicity(t[0], max(t[0], t[1]))),
    st.integers(min_value=0, max_value=5).map(
        lambda low: Multiplicity(low, MANY)),
)

_identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
_methods = st.sampled_from(["GET", "POST", "PUT", "DELETE"])

# Guards restricted to syntactically valid OCL fragments.
_guards = st.sampled_from([
    "true",
    "x->size() = 1",
    "volume.status <> 'in-use'",
    "a.b >= 3 and c->notEmpty()",
    "user.roles->includes('admin')",
])


class TestMultiplicityProperties:
    @given(_multiplicities)
    @settings(max_examples=100, deadline=None)
    def test_parse_str_round_trip(self, multiplicity):
        assert Multiplicity.parse(str(multiplicity)) == multiplicity

    @given(_multiplicities)
    @settings(max_examples=100, deadline=None)
    def test_is_many_consistent(self, multiplicity):
        if multiplicity.upper is MANY:
            assert multiplicity.is_many
        elif multiplicity.upper <= 1:
            assert not multiplicity.is_many


@st.composite
def _diagrams(draw):
    names = draw(st.lists(_identifiers, min_size=1, max_size=5,
                          unique=True))
    diagram = ClassDiagram("d")
    for name in names:
        has_attrs = draw(st.booleans())
        attributes = [Attribute("id", "String")] if has_attrs else []
        diagram.add_class(ResourceClass(name, attributes))
    # Random forward associations (acyclic by construction: i -> j > i).
    for i, source in enumerate(names):
        for j in range(i + 1, len(names)):
            if draw(st.booleans()):
                diagram.add_association(Association(
                    source, names[j], f"r{i}_{j}",
                    draw(_multiplicities)))
    return diagram


@st.composite
def _machines(draw):
    state_names = draw(st.lists(_identifiers, min_size=1, max_size=4,
                                unique=True))
    machine = StateMachine("m")
    for index, name in enumerate(state_names):
        machine.add_state(State(name, draw(_guards), is_initial=(index == 0)))
    transition_count = draw(st.integers(min_value=0, max_value=6))
    for _ in range(transition_count):
        source = draw(st.sampled_from(state_names))
        target = draw(st.sampled_from(state_names))
        trigger = f"{draw(_methods)}(res)"
        machine.add_transition(Transition(
            source, target, trigger, draw(_guards), draw(_guards),
            draw(st.lists(st.sampled_from(["1.1", "1.2", "9.9"]),
                          max_size=2))))
    return machine


class TestXmiRoundTripProperties:
    @given(_diagrams())
    @settings(max_examples=60, deadline=None)
    def test_diagram_round_trip(self, diagram):
        parsed, _ = read_xmi(write_xmi(diagram=diagram))
        assert list(parsed.classes) == list(diagram.classes)
        for name in diagram.classes:
            assert parsed.get_class(name) == diagram.get_class(name)
        assert parsed.associations == diagram.associations

    @given(_machines())
    @settings(max_examples=60, deadline=None)
    def test_machine_round_trip(self, machine):
        _, parsed = read_xmi(write_xmi(machine=machine))
        assert list(parsed.states) == list(machine.states)
        for name in machine.states:
            assert parsed.get_state(name) == machine.get_state(name)
        assert parsed.transitions == machine.transitions

    @given(_machines())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_stable(self, machine):
        once = write_xmi(machine=machine)
        _, parsed = read_xmi(once)
        twice = write_xmi(machine=parsed)
        assert once == twice


class TestReachabilityProperties:
    @given(_machines())
    @settings(max_examples=60, deadline=None)
    def test_reachable_states_subset(self, machine):
        reachable = machine.reachable_states()
        assert set(reachable) <= set(machine.states)
        initial = machine.initial_state()
        if initial is not None:
            assert initial.name in reachable

    @given(_machines())
    @settings(max_examples=60, deadline=None)
    def test_triggers_cover_transitions(self, machine):
        triggers = set(machine.triggers())
        for transition in machine.transitions:
            assert transition.trigger in triggers
        total = sum(len(machine.transitions_triggered_by(trigger))
                    for trigger in triggers)
        assert total == len(machine.transitions)
