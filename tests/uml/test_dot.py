"""Tests for the Graphviz DOT export of the design models."""

from repro.core import cinder_behavior_model, cinder_resource_model
from repro.uml import (
    State,
    StateMachine,
    Transition,
    class_diagram_to_dot,
    state_machine_to_dot,
)


def balanced(text):
    return text.count("{") == text.count("}")


class TestClassDiagramDot:
    def test_structure(self):
        dot = class_diagram_to_dot(cinder_resource_model())
        assert dot.startswith('digraph "Cinder" {')
        assert dot.rstrip().endswith("}")
        assert balanced(dot)

    def test_all_classes_present(self):
        dot = class_diagram_to_dot(cinder_resource_model())
        for name in ("Projects", "project", "Volumes", "volume",
                     "quota_sets"):
            assert f'"{name}"' in dot

    def test_collections_stereotyped(self):
        dot = class_diagram_to_dot(cinder_resource_model())
        assert "collection" in dot

    def test_attributes_rendered(self):
        dot = class_diagram_to_dot(cinder_resource_model())
        assert "+ status: String" in dot
        assert "+ size: Integer" in dot

    def test_associations_with_multiplicity(self):
        dot = class_diagram_to_dot(cinder_resource_model())
        assert '"Volumes" -> "volume"' in dot
        assert "0..*" in dot
        assert "1..1" in dot


class TestStateMachineDot:
    def test_structure(self):
        dot = state_machine_to_dot(cinder_behavior_model())
        assert dot.startswith('digraph "cinder_project" {')
        assert balanced(dot)

    def test_initial_marker(self):
        dot = state_machine_to_dot(cinder_behavior_model())
        assert "__initial ->" in dot
        assert '"project_with_no_volume"' in dot

    def test_invariants_inside_states(self):
        dot = state_machine_to_dot(cinder_behavior_model())
        assert "project.id-" in dot  # invariant text present

    def test_guards_and_secreqs_on_edges(self):
        dot = state_machine_to_dot(cinder_behavior_model())
        assert "DELETE(volume)" in dot
        assert "SecReq: 1.4" in dot
        assert "in-use" in dot

    def test_suppression_flags(self):
        dot = state_machine_to_dot(cinder_behavior_model(),
                                   show_invariants=False, show_guards=False)
        assert "project.id-" not in dot
        assert "SecReq: 1.4" in dot  # annotations always shown

    def test_quote_escaping(self):
        machine = StateMachine("m")
        machine.add_state(State('with"quote', "x = 'a'", is_initial=True))
        machine.add_transition(Transition(
            'with"quote', 'with"quote', "GET(x)", guard="y = 'in-use'"))
        dot = state_machine_to_dot(machine)
        assert '\\"' in dot
        assert balanced(dot)
