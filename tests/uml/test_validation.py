"""Tests for model well-formedness validation."""

from repro.uml import (
    MANY,
    Association,
    Attribute,
    ClassDiagram,
    Multiplicity,
    ResourceClass,
    State,
    StateMachine,
    Transition,
    validate_class_diagram,
    validate_state_machine,
)
from repro.uml.validation import ERROR, WARNING, errors_only


def good_diagram():
    diagram = ClassDiagram("d")
    diagram.add_class(ResourceClass("Things"))
    diagram.add_class(ResourceClass("thing", [Attribute("id", "String")]))
    diagram.add_association(Association(
        "Things", "thing", "things", Multiplicity(0, MANY)))
    return diagram


def good_machine():
    machine = StateMachine("m")
    machine.add_state(State("empty", "thing->size()=0", is_initial=True))
    machine.add_state(State("busy", "thing->size()>=1"))
    machine.add_transition(Transition(
        "empty", "busy", "POST(thing)", guard="true", effect="true",
        security_requirements=["1.1"]))
    return machine


class TestClassDiagramValidation:
    def test_clean_diagram(self):
        assert validate_class_diagram(good_diagram()) == []

    def test_empty_diagram(self):
        violations = validate_class_diagram(ClassDiagram("empty"))
        assert errors_only(violations)

    def test_private_attribute_flagged(self):
        diagram = good_diagram()
        diagram.get_class("thing").add_attribute(
            Attribute("secret", "String", visibility="private"))
        violations = errors_only(validate_class_diagram(diagram))
        assert any("public" in v.message for v in violations)

    def test_untyped_attribute_flagged(self):
        diagram = good_diagram()
        diagram.get_class("thing").add_attribute(Attribute("x", ""))
        violations = errors_only(validate_class_diagram(diagram))
        assert any("typed" in v.message for v in violations)

    def test_duplicate_attribute_flagged(self):
        diagram = good_diagram()
        diagram.get_class("thing").add_attribute(Attribute("id", "String"))
        violations = errors_only(validate_class_diagram(diagram))
        assert any("duplicate attribute" in v.message for v in violations)

    def test_missing_role_name_flagged(self):
        diagram = good_diagram()
        diagram.add_class(ResourceClass("other", [Attribute("id")]))
        diagram.add_association(Association("thing", "other", ""))
        violations = errors_only(validate_class_diagram(diagram))
        assert any("role name" in v.message for v in violations)

    def test_clashing_role_names_flagged(self):
        diagram = good_diagram()
        diagram.add_class(ResourceClass("other", [Attribute("id")]))
        diagram.add_association(Association("Things", "other", "things"))
        violations = errors_only(validate_class_diagram(diagram))
        assert any("clash" in v.message for v in violations)

    def test_collection_with_single_member_warned(self):
        diagram = ClassDiagram("d")
        diagram.add_class(ResourceClass("Coll"))
        diagram.add_class(ResourceClass("item", [Attribute("id")]))
        diagram.add_association(Association(
            "Coll", "item", "items", Multiplicity(1, 1)))
        violations = validate_class_diagram(diagram)
        assert any(v.level == WARNING and "0..*" in v.message
                   for v in violations)

    def test_no_root_flagged(self):
        diagram = ClassDiagram("d")
        diagram.add_class(ResourceClass("a", [Attribute("id")]))
        diagram.add_class(ResourceClass("b", [Attribute("id")]))
        diagram.add_association(Association("a", "b", "bs"))
        diagram.add_association(Association("b", "a", "as_"))
        violations = errors_only(validate_class_diagram(diagram))
        assert any("root" in v.message for v in violations)

    def test_orphan_class_warned(self):
        diagram = good_diagram()
        diagram.add_class(ResourceClass("loner", [Attribute("id")]))
        violations = validate_class_diagram(diagram)
        assert any(v.level == WARNING and v.element == "loner"
                   for v in violations)


class TestStateMachineValidation:
    def test_clean_machine(self):
        assert validate_state_machine(good_machine()) == []

    def test_empty_machine(self):
        violations = validate_state_machine(StateMachine("m"))
        assert errors_only(violations)

    def test_missing_initial_flagged(self):
        machine = StateMachine("m")
        machine.add_state(State("a"))
        violations = errors_only(validate_state_machine(machine))
        assert any("initial" in v.message for v in violations)

    def test_bad_invariant_ocl_flagged(self):
        machine = StateMachine("m")
        machine.add_state(State("a", "this is ((not ocl", is_initial=True))
        violations = errors_only(validate_state_machine(machine))
        assert any("invariant" in v.message for v in violations)

    def test_bad_guard_ocl_flagged(self):
        machine = good_machine()
        machine.add_transition(Transition(
            "empty", "busy", "PUT(thing)", guard="->broken(",
            security_requirements=["1.2"]))
        violations = errors_only(validate_state_machine(machine))
        assert any("guard" in v.message for v in violations)

    def test_bad_effect_ocl_flagged(self):
        machine = good_machine()
        machine.add_transition(Transition(
            "empty", "busy", "PUT(thing)", effect="1 +",
            security_requirements=["1.2"]))
        violations = errors_only(validate_state_machine(machine))
        assert any("effect" in v.message for v in violations)

    def test_cross_model_unknown_resource_flagged(self):
        machine = good_machine()
        machine.add_transition(Transition(
            "empty", "busy", "POST(ghost)", security_requirements=["1.9"]))
        violations = errors_only(validate_state_machine(machine, good_diagram()))
        assert any("ghost" in v.message for v in violations)

    def test_cross_model_known_resource_clean(self):
        assert validate_state_machine(good_machine(), good_diagram()) == []

    def test_unannotated_mutation_warned(self):
        machine = good_machine()
        machine.add_transition(Transition("empty", "busy", "DELETE(thing)"))
        violations = validate_state_machine(machine)
        assert any(v.level == WARNING and "security-requirement" in v.message
                   for v in violations)

    def test_unannotated_get_not_warned(self):
        machine = good_machine()
        machine.add_transition(Transition("busy", "busy", "GET(thing)"))
        violations = validate_state_machine(machine)
        assert not any("security-requirement" in v.message for v in violations)

    def test_unreachable_state_warned(self):
        machine = good_machine()
        machine.add_state(State("island", "true"))
        violations = validate_state_machine(machine)
        assert any(v.level == WARNING and v.element == "island"
                   for v in violations)
