"""Tests for model slicing (the paper's future-work feature)."""

import pytest

from repro.errors import ModelError
from repro.core import cinder_behavior_model, cinder_resource_model
from repro.uml import (
    slice_class_diagram,
    slice_models,
    slice_state_machine,
    validate_class_diagram,
    validate_state_machine,
)
from repro.uml.validation import errors_only
from repro.workloads import synthetic_models


class TestStateMachineSlicing:
    def test_slice_by_method(self):
        machine = cinder_behavior_model()
        sliced = slice_state_machine(machine, methods=["DELETE"])
        assert len(sliced.transitions) == 3
        assert all(t.trigger.method == "DELETE" for t in sliced.transitions)

    def test_slice_keeps_touched_states_only(self):
        machine = cinder_behavior_model()
        sliced = slice_state_machine(machine, methods=["DELETE"])
        # DELETE touches all three Cinder states.
        assert set(sliced.states) == set(machine.states)
        sliced_post = slice_state_machine(machine, methods=["POST"])
        assert set(sliced_post.states) == set(machine.states)

    def test_slice_preserves_annotations_and_guards(self):
        machine = cinder_behavior_model()
        sliced = slice_state_machine(machine, methods=["DELETE"])
        for transition in sliced.transitions:
            assert transition.security_requirements == ("1.4",)
            assert "in-use" in transition.guard

    def test_initial_state_kept_when_touched(self):
        machine = cinder_behavior_model()
        sliced = slice_state_machine(machine, methods=["POST"])
        assert sliced.initial_state().name == machine.initial_state().name

    def test_initial_reassigned_when_not_touched(self):
        machine = cinder_behavior_model()
        # GET(volume)/PUT(volume) never touch the initial no-volume state.
        sliced = slice_state_machine(machine, resources=["volume"],
                                     methods=["GET", "PUT"])
        assert sliced.initial_state() is not None
        assert sliced.initial_state().name != machine.initial_state().name

    def test_empty_slice_rejected(self):
        with pytest.raises(ModelError):
            slice_state_machine(cinder_behavior_model(), methods=["PATCH"])

    def test_slice_name(self):
        sliced = slice_state_machine(cinder_behavior_model(),
                                     methods=["DELETE"], name="deletes")
        assert sliced.name == "deletes"

    def test_sliced_machine_validates(self):
        sliced = slice_state_machine(cinder_behavior_model(),
                                     methods=["DELETE", "POST"])
        assert errors_only(validate_state_machine(sliced)) == []


class TestClassDiagramSlicing:
    def test_slice_keeps_uri_ancestors(self):
        diagram = cinder_resource_model()
        sliced = slice_class_diagram(diagram, ["volume"])
        # volume needs Volumes -> project -> Projects to derive its URI.
        assert set(sliced.classes) == {
            "Projects", "project", "Volumes", "volume"}

    def test_sliced_uris_match_original(self):
        diagram = cinder_resource_model()
        sliced = slice_class_diagram(diagram, ["volume"])
        assert sliced.item_uri("volume") == diagram.item_uri("volume")

    def test_unknown_resource_rejected(self):
        with pytest.raises(ModelError):
            slice_class_diagram(cinder_resource_model(), ["ghost"])

    def test_sliced_diagram_validates(self):
        sliced = slice_class_diagram(cinder_resource_model(), ["volume"])
        assert errors_only(validate_class_diagram(sliced)) == []

    def test_attributes_preserved(self):
        sliced = slice_class_diagram(cinder_resource_model(), ["volume"])
        assert sliced.get_class("volume") == \
            cinder_resource_model().get_class("volume")


class TestCombinedSlicing:
    def test_volume_slice_of_cinder_is_whole_scenario(self):
        diagram, machine = slice_models(
            cinder_resource_model(), cinder_behavior_model(), ["volume"])
        # The Cinder models only describe the volume scenario, so slicing
        # by volume keeps every transition.
        assert len(machine.transitions) == \
            len(cinder_behavior_model().transitions)
        assert "quota_sets" not in diagram.classes  # not on the URI path

    def test_synthetic_slice_down_to_one_resource(self):
        full_diagram, full_machine = synthetic_models(4)
        diagram, machine = slice_models(full_diagram, full_machine,
                                        ["c2_item"])
        assert set(machine.states) == {
            "c2_item_empty", "c2_item_partial", "c2_item_full"}
        assert len(machine.transitions) == 13
        assert set(diagram.classes) == {"Root", "c2_items", "c2_item"}

    def test_sliced_contracts_match_full_model(self):
        from repro.core import ContractGenerator

        full_diagram, full_machine = synthetic_models(3)
        diagram, machine = slice_models(full_diagram, full_machine,
                                        ["c1_item"])
        sliced_contract = ContractGenerator(machine, diagram).for_trigger(
            "DELETE(c1_item)")
        full_contract = ContractGenerator(
            full_machine, full_diagram).for_trigger("DELETE(c1_item)")
        assert sliced_contract.precondition == full_contract.precondition
        assert sliced_contract.postcondition == full_contract.postcondition

    def test_method_filter_composes(self):
        diagram, machine = slice_models(
            cinder_resource_model(), cinder_behavior_model(),
            ["volume"], methods=["DELETE"])
        assert len(machine.transitions) == 3

    def test_sliced_monitor_still_kills_delete_mutant(self):
        from repro.cloud import PrivateCloud, paper_mutants
        from repro.core import CloudMonitor
        from repro.validation import MutationCampaign

        diagram, machine = slice_models(
            cinder_resource_model(), cinder_behavior_model(), ["volume"])

        def setup():
            cloud = PrivateCloud.paper_setup()
            monitor = CloudMonitor.for_cinder(
                cloud.network, "myProject", machine=machine,
                diagram=diagram, enforcing=False)
            cloud.network.register("cmonitor", monitor.app)
            return cloud, monitor

        result = MutationCampaign(setup=setup).run(paper_mutants())
        assert result.kill_rate == 1.0
