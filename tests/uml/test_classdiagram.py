"""Tests for the resource model (class diagram)."""

import pytest

from repro.errors import ModelError
from repro.uml import (
    MANY,
    Association,
    Attribute,
    ClassDiagram,
    Multiplicity,
    ResourceClass,
)


def cinder_diagram():
    """The Figure-3 (left) resource model."""
    diagram = ClassDiagram("Cinder")
    diagram.add_class(ResourceClass("Projects"))
    diagram.add_class(ResourceClass("project", [Attribute("id", "String")]))
    diagram.add_class(ResourceClass("Volumes"))
    diagram.add_class(ResourceClass("volume", [
        Attribute("id", "String"), Attribute("status", "String"),
        Attribute("size", "Integer")]))
    diagram.add_class(ResourceClass("quota_sets", [
        Attribute("volumes", "Integer")]))
    diagram.add_association(Association(
        "Projects", "project", "projects", Multiplicity(0, MANY)))
    diagram.add_association(Association(
        "project", "Volumes", "volumes", Multiplicity(1, 1)))
    diagram.add_association(Association(
        "Volumes", "volume", "volumes", Multiplicity(0, MANY)))
    diagram.add_association(Association(
        "project", "quota_sets", "quota_sets", Multiplicity(1, 1)))
    return diagram


class TestMultiplicity:
    def test_str(self):
        assert str(Multiplicity(0, MANY)) == "0..*"
        assert str(Multiplicity(1, 1)) == "1..1"

    def test_parse_range(self):
        assert Multiplicity.parse("0..*") == Multiplicity(0, MANY)
        assert Multiplicity.parse("1..3") == Multiplicity(1, 3)

    def test_parse_single(self):
        assert Multiplicity.parse("1") == Multiplicity(1, 1)
        assert Multiplicity.parse("*") == Multiplicity(0, MANY)

    def test_is_many(self):
        assert Multiplicity(0, MANY).is_many
        assert Multiplicity(0, 5).is_many
        assert not Multiplicity(1, 1).is_many

    def test_invalid_bounds(self):
        with pytest.raises(ModelError):
            Multiplicity(-1, 2)
        with pytest.raises(ModelError):
            Multiplicity(3, 2)

    def test_equality_and_hash(self):
        assert Multiplicity(0, MANY) == Multiplicity(0, MANY)
        assert len({Multiplicity(1, 1), Multiplicity(1, 1)}) == 1


class TestResourceClass:
    def test_collection_has_no_attributes(self):
        # Section IV-A: a collection resource definition has no attributes.
        assert ResourceClass("Volumes").is_collection

    def test_normal_resource(self):
        cls = ResourceClass("volume", [Attribute("id")])
        assert not cls.is_collection

    def test_attribute_lookup(self):
        cls = ResourceClass("volume", [Attribute("status", "String")])
        assert cls.attribute("status").type_name == "String"

    def test_attribute_lookup_missing(self):
        with pytest.raises(ModelError):
            ResourceClass("volume").attribute("nope")

    def test_add_attribute_changes_kind(self):
        cls = ResourceClass("thing")
        assert cls.is_collection
        cls.add_attribute(Attribute("id"))
        assert not cls.is_collection

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            ResourceClass("")

    def test_default_attribute_is_public_string(self):
        attribute = Attribute("id")
        assert attribute.visibility == "public"
        assert attribute.type_name == "String"


class TestDiagramConstruction:
    def test_duplicate_class_rejected(self):
        diagram = ClassDiagram("d")
        diagram.add_class(ResourceClass("a"))
        with pytest.raises(ModelError):
            diagram.add_class(ResourceClass("a"))

    def test_association_requires_existing_classes(self):
        diagram = ClassDiagram("d")
        diagram.add_class(ResourceClass("a"))
        with pytest.raises(ModelError):
            diagram.add_association(Association("a", "ghost", "things"))

    def test_get_class_missing(self):
        with pytest.raises(ModelError):
            ClassDiagram("d").get_class("ghost")

    def test_outgoing_incoming(self):
        diagram = cinder_diagram()
        assert [a.target for a in diagram.outgoing("project")] == [
            "Volumes", "quota_sets"]
        assert [a.source for a in diagram.incoming("volume")] == ["Volumes"]

    def test_roots(self):
        diagram = cinder_diagram()
        assert [cls.name for cls in diagram.roots()] == ["Projects"]

    def test_iter_preserves_insertion_order(self):
        diagram = cinder_diagram()
        assert [c.name for c in diagram.iter_classes()][0] == "Projects"


class TestUriDerivation:
    def test_paper_volume_uri(self):
        # Section II: Cinder exposes volumes via /{project_id}/volumes/.
        diagram = cinder_diagram()
        paths = diagram.uri_paths()
        assert paths["Volumes"] == "/{project_id}/volumes"
        assert paths["quota_sets"] == "/{project_id}/quota_sets"

    def test_item_uri_for_collection_member(self):
        diagram = cinder_diagram()
        assert diagram.item_uri("volume") == "/{project_id}/volumes/{volume_id}"

    def test_item_uri_for_singleton(self):
        diagram = cinder_diagram()
        assert diagram.item_uri("quota_sets") == "/{project_id}/quota_sets"

    def test_item_uri_unknown_class(self):
        diagram = cinder_diagram()
        with pytest.raises(ModelError):
            diagram.item_uri("ghost")

    def test_root_collection_items_at_top_level(self):
        diagram = cinder_diagram()
        assert diagram.item_uri("project") == "/{project_id}"

    def test_cycle_terminates(self):
        diagram = ClassDiagram("cyclic")
        diagram.add_class(ResourceClass("a", [Attribute("id")]))
        diagram.add_class(ResourceClass("b", [Attribute("id")]))
        diagram.add_association(Association("a", "b", "bs", Multiplicity(1, 1)))
        diagram.add_association(Association("b", "a", "as_", Multiplicity(1, 1)))
        paths = diagram.uri_paths()  # must not loop forever
        assert isinstance(paths, dict)


class TestSingularization:
    def test_plural_s(self):
        from repro.uml.classdiagram import _singular

        assert _singular("volumes") == "volume"

    def test_ies(self):
        from repro.uml.classdiagram import _singular

        assert _singular("policies") == "policy"

    def test_no_change(self):
        from repro.uml.classdiagram import _singular

        assert _singular("quota") == "quota"
        assert _singular("class") == "class"
