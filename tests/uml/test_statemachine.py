"""Tests for the behavioral model (protocol state machine)."""

import pytest

from repro.errors import ModelError
from repro.uml import State, StateMachine, Transition, Trigger


def project_machine():
    """The Figure-3 (right) behavioral model: three project states."""
    machine = StateMachine("project_behavior")
    machine.add_state(State(
        "project_with_no_volume",
        "project.id->size()=1 and project.volumes->size()=0",
        is_initial=True))
    machine.add_state(State(
        "project_with_volume_and_not_full_quota",
        "project.id->size()=1 and project.volumes->size()>=1 and "
        "project.volumes->size() < quota_sets.volumes"))
    machine.add_state(State(
        "project_with_volume_and_full_quota",
        "project.id->size()=1 and "
        "project.volumes->size() = quota_sets.volumes"))
    machine.add_transition(Transition(
        "project_with_no_volume", "project_with_volume_and_not_full_quota",
        "POST(volumes)",
        guard="user.groups->includes('admin') or user.groups->includes('member')",
        effect="project.volumes->size() = 1",
        security_requirements=["1.3"]))
    machine.add_transition(Transition(
        "project_with_volume_and_not_full_quota",
        "project_with_volume_and_not_full_quota",
        "DELETE(volume)",
        guard="volume.status <> 'in-use' and user.groups->includes('admin') "
              "and project.volumes->size() > 1",
        effect="project.volumes->size() < pre(project.volumes->size())",
        security_requirements=["1.4"]))
    machine.add_transition(Transition(
        "project_with_volume_and_full_quota",
        "project_with_volume_and_not_full_quota",
        "DELETE(volume)",
        guard="volume.status <> 'in-use' and user.groups->includes('admin')",
        effect="project.volumes->size() < pre(project.volumes->size())",
        security_requirements=["1.4"]))
    return machine


class TestTrigger:
    def test_parse(self):
        trigger = Trigger.parse("DELETE(volume)")
        assert trigger.method == "DELETE"
        assert trigger.resource == "volume"

    def test_parse_with_spaces(self):
        assert Trigger.parse(" POST ( volumes ) ") == Trigger("POST", "volumes")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ModelError):
            Trigger.parse("not a trigger")

    def test_unknown_method(self):
        with pytest.raises(ModelError):
            Trigger("FROB", "volume")

    def test_case_normalization(self):
        assert Trigger("delete", "v").method == "DELETE"

    def test_str_roundtrip(self):
        trigger = Trigger("GET", "volume")
        assert Trigger.parse(str(trigger)) == trigger

    def test_empty_resource(self):
        with pytest.raises(ModelError):
            Trigger("GET", "")


class TestStateMachineConstruction:
    def test_duplicate_state_rejected(self):
        machine = StateMachine("m")
        machine.add_state(State("s"))
        with pytest.raises(ModelError):
            machine.add_state(State("s"))

    def test_two_initials_rejected(self):
        machine = StateMachine("m")
        machine.add_state(State("a", is_initial=True))
        with pytest.raises(ModelError):
            machine.add_state(State("b", is_initial=True))

    def test_transition_requires_states(self):
        machine = StateMachine("m")
        machine.add_state(State("a"))
        with pytest.raises(ModelError):
            machine.add_transition(Transition("a", "ghost", "GET(x)"))

    def test_get_state_missing(self):
        with pytest.raises(ModelError):
            StateMachine("m").get_state("ghost")

    def test_transition_accepts_text_trigger(self):
        machine = StateMachine("m")
        machine.add_state(State("a"))
        transition = machine.add_transition(Transition("a", "a", "GET(thing)"))
        assert transition.trigger == Trigger("GET", "thing")

    def test_empty_state_name(self):
        with pytest.raises(ModelError):
            State("")


class TestQueries:
    def test_initial_state(self):
        machine = project_machine()
        assert machine.initial_state().name == "project_with_no_volume"

    def test_triggers_distinct_ordered(self):
        machine = project_machine()
        assert [str(t) for t in machine.triggers()] == [
            "POST(volumes)", "DELETE(volume)"]

    def test_transitions_triggered_by(self):
        # Section V: DELETE(volume) fires multiple transitions that must be
        # combined into one contract.
        machine = project_machine()
        fired = machine.transitions_triggered_by("DELETE(volume)")
        assert len(fired) == 2
        assert all(t.trigger.method == "DELETE" for t in fired)

    def test_transitions_triggered_by_trigger_object(self):
        machine = project_machine()
        assert len(machine.transitions_triggered_by(
            Trigger("POST", "volumes"))) == 1

    def test_outgoing(self):
        machine = project_machine()
        assert len(machine.outgoing("project_with_volume_and_not_full_quota")) == 1

    def test_reachable_states(self):
        machine = project_machine()
        reachable = machine.reachable_states()
        assert "project_with_no_volume" in reachable
        assert "project_with_volume_and_not_full_quota" in reachable
        # full_quota has no inbound transition in this reduced model
        assert "project_with_volume_and_full_quota" not in reachable

    def test_reachable_without_initial_is_empty(self):
        machine = StateMachine("m")
        machine.add_state(State("a"))
        assert machine.reachable_states() == []

    def test_security_requirement_ids(self):
        machine = project_machine()
        assert machine.security_requirement_ids() == ["1.3", "1.4"]

    def test_self_loop_allowed(self):
        machine = project_machine()
        loops = [t for t in machine.transitions if t.source == t.target]
        assert len(loops) == 1
