"""Fuzzing the XMI reader: adversarial input must fail with XMIError only.

The XMI file is the tool's external input surface ("The XMI files are
given as the input to CM"); whatever a user feeds it, the reader must
either parse it or raise the documented :class:`XMIError` -- never
``KeyError``/``AttributeError`` leaking implementation details.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, XMIError
from repro.uml import read_xmi
from repro.uml.xmi_writer import UML_NS, XMI_NS


def read_or_xmi_error(document):
    try:
        return read_xmi(document)
    except XMIError:
        return None


class TestRandomText:
    @given(st.text(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_random_text_never_leaks_internal_errors(self, text):
        read_or_xmi_error(text)

    @given(st.binary(max_size=100).map(
        lambda b: b.decode("latin-1")))
    @settings(max_examples=100, deadline=None)
    def test_binaryish_text(self, text):
        read_or_xmi_error(text)


def wrap_model(inner: str) -> str:
    return (f'<?xml version="1.0"?>'
            f'<xmi:XMI xmlns:xmi="{XMI_NS}" xmlns:uml="{UML_NS}">'
            f'<uml:Model name="m">{inner}</uml:Model></xmi:XMI>')


_ELEMENT_SNIPPETS = st.sampled_from([
    '<packagedElement/>',
    '<packagedElement xmi:type="uml:Class"/>',
    '<packagedElement xmi:type="uml:Package" kind="resource-model">'
    '<packagedElement xmi:type="uml:Class"/></packagedElement>',
    '<packagedElement xmi:type="uml:Package" kind="resource-model">'
    '<packagedElement xmi:type="uml:Class" name="a">'
    '<ownedAttribute/></packagedElement></packagedElement>',
    '<packagedElement xmi:type="uml:Package" kind="resource-model">'
    '<packagedElement xmi:type="uml:Association" name="x"/>'
    '</packagedElement>',
    '<packagedElement xmi:type="uml:StateMachine" name="sm"/>',
    '<packagedElement xmi:type="uml:StateMachine" name="sm">'
    '<region><subvertex xmi:type="uml:State"/></region></packagedElement>',
    '<packagedElement xmi:type="uml:StateMachine" name="sm">'
    '<region><transition source="ghost" target="ghost"/></region>'
    '</packagedElement>',
    '<packagedElement xmi:type="uml:StateMachine" name="sm">'
    '<region><subvertex xmi:type="uml:State" xmi:id="s" name="s"/>'
    '<transition source="s" target="s"/></region></packagedElement>',
    '<packagedElement xmi:type="uml:StateMachine" name="sm">'
    '<region><subvertex xmi:type="uml:State" xmi:id="s" name="s"/>'
    '<transition source="s" target="s"><trigger name="NONSENSE"/>'
    '</transition></region></packagedElement>',
])


class TestStructurallyHostileDocuments:
    @given(st.lists(_ELEMENT_SNIPPETS, max_size=4))
    @settings(max_examples=150, deadline=None)
    def test_hostile_structures_fail_cleanly(self, snippets):
        document = wrap_model("".join(snippets))
        try:
            read_xmi(document)
        except ReproError:
            pass  # XMIError or ModelError: both documented, both fine

    def test_unnamed_class_message(self):
        document = wrap_model(
            '<packagedElement xmi:type="uml:Package" kind="resource-model">'
            '<packagedElement xmi:type="uml:Class"/></packagedElement>')
        with pytest.raises(XMIError, match="without a name"):
            read_xmi(document)

    def test_transition_without_trigger_message(self):
        document = wrap_model(
            '<packagedElement xmi:type="uml:StateMachine" name="sm">'
            '<region><subvertex xmi:type="uml:State" xmi:id="s" name="s"/>'
            '<transition source="s" target="s"/></region>'
            '</packagedElement>')
        with pytest.raises(XMIError, match="no trigger"):
            read_xmi(document)
