"""Tests for workload generation and synthetic scaling models."""

import pytest

from repro.core import CloudMonitor, ContractGenerator
from repro.uml.validation import errors_only, validate_class_diagram
from repro.validation import default_setup
from repro.workloads import (
    RequestMix,
    WorkloadRunner,
    make_workload,
    synthetic_models,
)


class TestMakeWorkload:
    def test_count(self):
        assert len(make_workload(25)) == 25

    def test_deterministic_with_seed(self):
        assert make_workload(50, seed=7) == make_workload(50, seed=7)

    def test_different_seeds_differ(self):
        assert make_workload(50, seed=1) != make_workload(50, seed=2)

    def test_plans_shape(self):
        for user, method, target in make_workload(30):
            assert user in ("alice", "bob", "carol")
            assert method in ("GET", "POST", "PUT", "DELETE")
            assert target in ("collection", "item")

    def test_mix_weights_respected(self):
        plans = make_workload(
            300, mix=RequestMix(get_collection=1, get_item=0, post=0,
                                put=0, delete=0))
        assert all(method == "GET" and target == "collection"
                   for _, method, target in plans)

    def test_custom_users(self):
        plans = make_workload(10, users=("alice",))
        assert all(user == "alice" for user, _, _ in plans)


class TestWorkloadRunner:
    def test_direct_execution_histogram(self):
        cloud, monitor = default_setup()
        runner = WorkloadRunner(cloud, monitor)
        histogram = runner.execute(make_workload(40), monitored=False)
        assert sum(histogram.values()) == 40
        assert histogram["2xx"] > 0
        assert histogram["5xx"] == 0

    def test_monitored_execution_histogram(self):
        cloud, monitor = default_setup()
        runner = WorkloadRunner(cloud, monitor)
        histogram = runner.execute(make_workload(40), monitored=True)
        assert sum(histogram.values()) == 40
        assert histogram["5xx"] == 0  # audit mode, clean cloud: no 502s

    def test_monitored_clean_cloud_no_violations(self):
        cloud, monitor = default_setup()
        runner = WorkloadRunner(cloud, monitor)
        runner.execute(make_workload(60, seed=3), monitored=True)
        assert monitor.violations() == []

    def test_same_plan_both_paths_same_success_profile(self):
        # The monitor must be transparent for valid traffic: the 2xx count
        # through the monitor matches the direct run on a fresh cloud.
        plans = make_workload(40, seed=11)
        cloud_a, monitor_a = default_setup()
        direct = WorkloadRunner(cloud_a, monitor_a).execute(
            plans, monitored=False)
        cloud_b, monitor_b = default_setup()
        monitored = WorkloadRunner(cloud_b, monitor_b).execute(
            plans, monitored=True)
        assert direct == monitored


class TestSyntheticModels:
    def test_sizes_grow_linearly(self):
        for n in (1, 3, 5):
            diagram, machine = synthetic_models(n)
            assert len(diagram.classes) == 2 * n + 1
            assert len(machine.states) == 3 * n
            assert len(machine.transitions) == 13 * n

    def test_resource_model_well_formed(self):
        diagram, _ = synthetic_models(4)
        assert errors_only(validate_class_diagram(diagram)) == []

    def test_contracts_generate_for_all_triggers(self):
        diagram, machine = synthetic_models(3)
        generator = ContractGenerator(machine, diagram)
        contracts = generator.all_contracts()
        assert len(contracts) == 5 * 3  # five methods per resource

    def test_security_requirements_annotated(self):
        _, machine = synthetic_models(2)
        ids = set(machine.security_requirement_ids())
        assert {"0.1", "0.2", "0.3", "0.4", "1.1", "1.2", "1.3", "1.4"} == ids

    def test_delete_contract_has_three_cases(self):
        diagram, machine = synthetic_models(2)
        generator = ContractGenerator(machine, diagram)
        contract = generator.for_trigger("DELETE(c1_item)")
        assert len(contract.cases) == 3

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            synthetic_models(0)

    def test_uri_derivation_works(self):
        diagram, _ = synthetic_models(2)
        paths = diagram.uri_paths()
        assert paths["c0_items"] == "/c0_items"
        assert diagram.item_uri("c1_item") == "/c1_items/{c1_item_id}"
