"""Tests for trace recording and replay."""

import io

import pytest

from repro.errors import ValidationError
from repro.validation import default_setup
from repro.workloads import (RecordingClient, Trace, TraceEntry,
                             bursty_arrivals, poisson_arrivals,
                             uniform_arrivals)


@pytest.fixture()
def setup():
    cloud, monitor = default_setup()
    tokens = cloud.paper_tokens()
    clients = {name: cloud.client(token) for name, token in tokens.items()}
    return cloud, monitor, clients


class TestTraceBasics:
    def test_record_and_len(self):
        trace = Trace()
        trace.record("bob", "post", "/cmonitor/volumes", {"volume": {}})
        trace.record("alice", "GET", "/cmonitor/volumes")
        assert len(trace) == 2
        assert trace.entries[0].method == "POST"

    def test_entry_json_round_trip(self):
        entry = TraceEntry("bob", "POST", "/x", {"volume": {"size": 1}})
        assert TraceEntry.from_json(entry.to_json()) == entry

    def test_entry_without_payload(self):
        entry = TraceEntry("alice", "GET", "/x")
        assert TraceEntry.from_json(entry.to_json()) == entry

    def test_malformed_line(self):
        with pytest.raises(ValidationError):
            TraceEntry.from_json("{broken")
        with pytest.raises(ValidationError):
            TraceEntry.from_json('{"user": "a"}')

    def test_save_load_file(self, tmp_path):
        trace = Trace()
        trace.record("bob", "POST", "/volumes", {"volume": {}})
        target = str(tmp_path / "trace.jsonl")
        assert trace.save(target) == 1
        assert Trace.load(target).entries == trace.entries

    def test_save_load_stream(self):
        trace = Trace()
        trace.record("carol", "GET", "/volumes")
        buffer = io.StringIO()
        trace.save(buffer)
        buffer.seek(0)
        assert Trace.load(buffer).entries == trace.entries


class TestReplay:
    def test_replay_against_monitor(self, setup):
        cloud, monitor, clients = setup
        trace = Trace()
        trace.record("bob", "POST", "/cmonitor/volumes",
                     {"volume": {"name": "t"}})
        trace.record("carol", "GET", "/cmonitor/volumes")
        responses = trace.replay(clients, "cmonitor")
        assert [r.status_code for r in responses] == [202, 200]
        assert len(monitor.log) == 2

    def test_replay_unknown_user(self, setup):
        cloud, monitor, clients = setup
        trace = Trace()
        trace.record("mallory", "GET", "/cmonitor/volumes")
        with pytest.raises(ValidationError):
            trace.replay(clients, "cmonitor")

    def test_replay_is_repeatable_regression_script(self, setup):
        # The release-regression workflow: record once, replay against a
        # fresh deployment, expect the same status sequence.
        cloud, monitor, clients = setup
        trace = Trace()
        trace.record("bob", "POST", "/cmonitor/volumes", {"volume": {}})
        trace.record("carol", "POST", "/cmonitor/volumes", {"volume": {}})
        trace.record("carol", "GET", "/cmonitor/volumes")
        first = [r.status_code for r in trace.replay(clients, "cmonitor")]

        cloud2, monitor2 = default_setup()
        tokens2 = cloud2.paper_tokens()
        clients2 = {name: cloud2.client(token)
                    for name, token in tokens2.items()}
        second = [r.status_code for r in trace.replay(clients2, "cmonitor")]
        assert first == second


class _HeaderSpy:
    """A stand-in client recording the headers each request carried."""

    def __init__(self):
        self.calls = []

    def request(self, method, url, payload=None, headers=None):
        self.calls.append((method, url, headers))
        from repro.httpsim import Response
        return Response(200, b"{}")


class TestArrivalTimes:
    def test_timed_entry_round_trips_with_at(self):
        entry = TraceEntry("bob", "GET", "/x", at=2.5)
        assert '"at": 2.5' in entry.to_json()
        assert TraceEntry.from_json(entry.to_json()) == entry

    def test_untimed_entry_keeps_the_four_key_wire_form(self):
        # Pre-timestamp traces must round-trip byte-identically.
        entry = TraceEntry("bob", "GET", "/x")
        assert '"at"' not in entry.to_json()
        assert TraceEntry.from_json(entry.to_json()).at is None

    def test_paced_replay_advances_the_manual_clock(self):
        from repro.obs.clock import ManualClock

        clock = ManualClock()
        trace = Trace()
        trace.record("u", "GET", "/a", at=1.0)
        trace.record("u", "GET", "/b", at=3.0)
        trace.replay({"u": _HeaderSpy()}, "anyhost", clock=clock)
        assert clock.now == pytest.approx(3.0)

    def test_paced_replay_stamps_the_arrival_header(self):
        from repro.core.admission import ARRIVAL_HEADER
        from repro.obs.clock import ManualClock

        clock = ManualClock()
        spy = _HeaderSpy()
        trace = Trace()
        trace.record("u", "GET", "/a", at=1.5)
        trace.replay({"u": spy}, "anyhost", clock=clock)
        assert spy.calls[0][2] == {ARRIVAL_HEADER: "1.5"}

    def test_lagging_replay_does_not_wait(self):
        # When the clock is already past an entry's arrival the replayer
        # must not sleep: the lag is the overload signal.
        from repro.obs.clock import ManualClock

        clock = ManualClock(start=10.0)
        trace = Trace()
        trace.record("u", "GET", "/a", at=2.0)
        trace.replay({"u": _HeaderSpy()}, "anyhost", clock=clock)
        assert clock.now == pytest.approx(10.0)

    def test_untimed_entries_replay_unpaced_even_with_a_clock(self):
        from repro.obs.clock import ManualClock

        clock = ManualClock()
        spy = _HeaderSpy()
        trace = Trace()
        trace.record("u", "GET", "/a")
        trace.replay({"u": spy}, "anyhost", clock=clock)
        assert clock.now == 0.0
        assert spy.calls[0][2] is None

    def test_without_a_clock_at_is_ignored(self, setup):
        cloud, monitor, clients = setup
        trace = Trace()
        trace.record("carol", "GET", "/cmonitor/volumes", at=50.0)
        responses = trace.replay(clients, "cmonitor")
        assert responses[0].status_code == 200


class TestRecordingClient:
    def test_records_while_passing_through(self, setup):
        cloud, monitor, clients = setup
        trace = Trace()
        recording = RecordingClient(clients["bob"], "bob", trace)
        response = recording.post("http://cmonitor/cmonitor/volumes",
                                  {"volume": {"name": "rec"}})
        assert response.status_code == 202
        assert len(trace) == 1
        entry = trace.entries[0]
        assert entry.user == "bob"
        assert entry.path == "/cmonitor/volumes"
        assert entry.payload == {"volume": {"name": "rec"}}

    def test_recorded_trace_replays_elsewhere(self, setup):
        cloud, monitor, clients = setup
        trace = Trace()
        recording = RecordingClient(clients["bob"], "bob", trace)
        recording.post("http://cmonitor/cmonitor/volumes", {"volume": {}})
        recording.get("http://cmonitor/cmonitor/volumes")

        cloud2, monitor2 = default_setup()
        tokens2 = cloud2.paper_tokens()
        clients2 = {name: cloud2.client(token)
                    for name, token in tokens2.items()}
        responses = trace.replay(clients2, "cmonitor")
        assert [r.status_code for r in responses] == [202, 200]

    def test_verb_helpers(self, setup):
        cloud, monitor, clients = setup
        trace = Trace()
        recording = RecordingClient(clients["alice"], "alice", trace)
        vid = recording.post("http://cmonitor/cmonitor/volumes",
                             {"volume": {}}).json()["volume"]["id"]
        recording.put(f"http://cmonitor/cmonitor/volumes/{vid}",
                      {"volume": {"name": "n"}})
        recording.delete(f"http://cmonitor/cmonitor/volumes/{vid}")
        assert [entry.method for entry in trace] == [
            "POST", "PUT", "DELETE"]


class TestArrivalDistributions:
    def test_uniform_is_evenly_spaced(self):
        assert uniform_arrivals(4, 0.5, start=1.0) == [1.0, 1.5, 2.0, 2.5]

    def test_uniform_rejects_negative_spacing(self):
        with pytest.raises(ValidationError):
            uniform_arrivals(3, -0.1)

    def test_bursty_groups_then_gaps(self):
        arrivals = bursty_arrivals(5, burst=2, gap=10.0, within=0.1)
        assert arrivals == [0.0, 0.1, 10.0, 10.1, 20.0]

    def test_bursty_rejects_empty_bursts(self):
        with pytest.raises(ValidationError):
            bursty_arrivals(4, burst=0, gap=1.0)

    def test_poisson_is_seeded_and_monotonic(self):
        first = poisson_arrivals(20, rate=5.0, seed=3)
        assert first == poisson_arrivals(20, rate=5.0, seed=3)
        assert first != poisson_arrivals(20, rate=5.0, seed=4)
        assert all(earlier < later
                   for earlier, later in zip(first, first[1:]))

    def test_poisson_rejects_non_positive_rate(self):
        with pytest.raises(ValidationError):
            poisson_arrivals(3, rate=0.0)

    def test_with_arrivals_stamps_a_copy(self):
        trace = Trace()
        trace.record("alice", "GET", "/volumes")
        trace.record("bob", "GET", "/volumes")
        timed = trace.with_arrivals([1.0, 2.0])
        assert [entry.at for entry in timed.entries] == [1.0, 2.0]
        # The original trace is untouched.
        assert [entry.at for entry in trace.entries] == [None, None]

    def test_with_arrivals_rejects_length_mismatch(self):
        trace = Trace()
        trace.record("alice", "GET", "/volumes")
        with pytest.raises(ValidationError):
            trace.with_arrivals([1.0, 2.0])


class TestConcurrentReplay:
    def make_trace(self, count=9):
        trace = Trace()
        for index in range(count):
            user = ("alice", "bob", "carol")[index % 3]
            trace.record(user, "GET", "/cmonitor/volumes")
        return trace

    def test_responses_keep_trace_order(self, setup):
        cloud, monitor, clients = setup
        trace = self.make_trace()
        serial = trace.replay(clients, "cmonitor")
        cloud2, monitor2 = default_setup()
        clients2 = {name: cloud2.client(token)
                    for name, token in cloud2.paper_tokens().items()}
        threaded = trace.replay(clients2, "cmonitor", concurrency=3)
        assert [r.status_code for r in threaded] \
            == [r.status_code for r in serial]
        assert len(monitor2.log) == len(monitor.log) == len(trace)

    def test_concurrency_above_trace_length_is_fine(self, setup):
        cloud, monitor, clients = setup
        responses = self.make_trace(count=2).replay(
            clients, "cmonitor", concurrency=16)
        assert len(responses) == 2

    def test_unknown_user_fails_before_any_send(self, setup):
        cloud, monitor, clients = setup
        trace = self.make_trace(count=4)
        trace.record("mallory", "GET", "/cmonitor/volumes")
        with pytest.raises(ValidationError):
            trace.replay(clients, "cmonitor", concurrency=2)
        # Pre-validation rejects the whole trace: nothing was sent.
        assert len(monitor.log) == 0

    def test_worker_errors_propagate(self, setup):
        cloud, monitor, clients = setup

        class BoomClient:
            def request(self, *args, **kwargs):
                raise RuntimeError("boom")

        broken = dict(clients, alice=BoomClient())
        with pytest.raises(RuntimeError):
            self.make_trace().replay(broken, "cmonitor", concurrency=3)
