"""Tests for the security-requirements table (paper Table I)."""

import pytest

from repro.errors import PolicyError
from repro.rbac import SecurityRequirement, SecurityRequirementsTable


class TestSecurityRequirement:
    def test_role_and_group_names(self):
        requirement = SecurityRequirement("1.1", "volume", "get", {
            "admin": ["proj_administrator"],
            "member": ["service_architect"],
        })
        assert requirement.method == "GET"
        assert requirement.role_names == ["admin", "member"]
        assert requirement.group_names == [
            "proj_administrator", "service_architect"]

    def test_permits_role(self):
        requirement = SecurityRequirement("1.4", "volume", "DELETE", {
            "admin": ["proj_administrator"]})
        assert requirement.permits_role("admin")
        assert not requirement.permits_role("member")

    def test_to_policy_rule(self):
        requirement = SecurityRequirement("1.3", "volume", "POST", {
            "admin": ["pa"], "member": ["sa"]})
        assert requirement.to_policy_rule() == "role:admin or role:member"

    def test_to_guard(self):
        requirement = SecurityRequirement("1.4", "volume", "DELETE", {
            "admin": ["pa"]})
        assert requirement.to_guard() == "user.roles->includes('admin')"

    def test_to_guard_custom_subject(self):
        requirement = SecurityRequirement("1.4", "volume", "DELETE", {
            "admin": ["pa"]})
        assert requirement.to_guard("caller") == \
            "caller.roles->includes('admin')"

    def test_empty_roles_rejected(self):
        with pytest.raises(PolicyError):
            SecurityRequirement("1.9", "volume", "GET", {})

    def test_empty_id_rejected(self):
        with pytest.raises(PolicyError):
            SecurityRequirement("", "volume", "GET", {"admin": []})

    def test_duplicate_groups_deduplicated(self):
        requirement = SecurityRequirement("1.1", "v", "GET", {
            "admin": ["shared"], "member": ["shared"]})
        assert requirement.group_names == ["shared"]


class TestTable:
    def test_duplicate_id_rejected(self):
        table = SecurityRequirementsTable()
        table.add(SecurityRequirement("1.1", "volume", "GET", {"admin": []}))
        with pytest.raises(PolicyError):
            table.add(SecurityRequirement("1.1", "server", "GET", {"admin": []}))

    def test_duplicate_resource_method_rejected(self):
        table = SecurityRequirementsTable()
        table.add(SecurityRequirement("1.1", "volume", "GET", {"admin": []}))
        with pytest.raises(PolicyError):
            table.add(SecurityRequirement("1.5", "volume", "GET", {"member": []}))

    def test_lookup(self):
        table = SecurityRequirementsTable.paper_table()
        assert table.lookup("volume", "delete").requirement_id == "1.4"
        assert table.lookup("volume", "PATCH") is None
        assert table.lookup("server", "GET") is None

    def test_get_by_id(self):
        table = SecurityRequirementsTable.paper_table()
        assert table.get("1.2").method == "PUT"
        with pytest.raises(PolicyError):
            table.get("9.9")

    def test_ids(self):
        assert SecurityRequirementsTable.paper_table().ids() == [
            "1.1", "1.2", "1.3", "1.4"]

    def test_len_iter(self):
        table = SecurityRequirementsTable.paper_table()
        assert len(table) == 4
        assert [r.method for r in table] == ["GET", "PUT", "POST", "DELETE"]

    def test_constructor_accepts_iterable(self):
        requirement = SecurityRequirement("1.1", "v", "GET", {"admin": []})
        table = SecurityRequirementsTable([requirement])
        assert len(table) == 1


class TestDerivedArtifacts:
    def test_to_policy(self):
        policy = SecurityRequirementsTable.paper_table().to_policy()
        assert policy["volume:delete"] == "role:admin"
        assert policy["volume:get"] == "role:admin or role:member or role:user"
        assert policy["volume:post"] == "role:admin or role:member"

    def test_to_guard_known_method(self):
        table = SecurityRequirementsTable.paper_table()
        assert table.to_guard("volume", "DELETE") == \
            "user.roles->includes('admin')"
        assert table.to_guard("volume", "POST") == (
            "user.roles->includes('admin') or "
            "user.roles->includes('member')")

    def test_to_guard_unknown_method_denies(self):
        table = SecurityRequirementsTable.paper_table()
        assert table.to_guard("volume", "PATCH") == "false"

    def test_guards_parse_as_ocl(self):
        from repro.ocl import evaluate

        table = SecurityRequirementsTable.paper_table()
        guard = table.to_guard("volume", "DELETE")
        assert evaluate(guard, {"user": {"roles": ["admin"]}}) is True
        assert evaluate(guard, {"user": {"roles": ["member"]}}) is False


class TestPaperTableRendering:
    """The TABLE-I reproduction: the render must match the paper's rows."""

    def test_exact_rows(self):
        rendered = SecurityRequirementsTable.paper_table().render()
        lines = [line for line in rendered.splitlines()
                 if line.startswith("|") and "Resource" not in line]
        cells = [[cell.strip() for cell in line.strip("|").split("|")]
                 for line in lines]
        assert cells == [
            ["volume", "1.1", "GET", "admin", "proj_administrator"],
            ["", "", "", "member", "service_architect"],
            ["", "", "", "user", "business_analyst"],
            ["", "1.2", "PUT", "admin", "proj_administrator"],
            ["", "", "", "member", "service_architect"],
            ["", "1.3", "POST", "admin", "proj_administrator"],
            ["", "", "", "member", "service_architect"],
            ["", "1.4", "DELETE", "admin", "proj_administrator"],
        ]

    def test_header_matches_paper(self):
        rendered = SecurityRequirementsTable.paper_table().render()
        assert "Resource" in rendered
        assert "SecReq" in rendered
        assert "Request" in rendered
        assert "Role" in rendered
        assert "UserGroup" in rendered
