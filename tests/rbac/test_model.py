"""Tests for the RBAC data model."""

import pytest

from repro.errors import PolicyError
from repro.rbac import RBACModel, Role, RoleAssignment, User, UserGroup


class TestBasics:
    def test_role_equality(self):
        assert Role("admin") == Role("admin")
        assert Role("admin") != Role("member")

    def test_empty_role_name(self):
        with pytest.raises(PolicyError):
            Role("")

    def test_empty_group_name(self):
        with pytest.raises(PolicyError):
            UserGroup("")

    def test_user_in_group(self):
        user = User("u1", "ann", ["proj_administrator"])
        assert user.in_group("proj_administrator")
        assert not user.in_group("service_architect")

    def test_assignment_needs_exactly_one_subject(self):
        with pytest.raises(PolicyError):
            RoleAssignment("admin", "p1")
        with pytest.raises(PolicyError):
            RoleAssignment("admin", "p1", user_id="u1", group="g1")


class TestModelPopulation:
    def test_add_role_idempotent(self):
        model = RBACModel()
        first = model.add_role("admin")
        second = model.add_role("admin")
        assert first is second

    def test_add_user_unknown_group(self):
        model = RBACModel()
        with pytest.raises(PolicyError):
            model.add_user("u1", "ann", ["ghost_group"])

    def test_duplicate_user_id(self):
        model = RBACModel()
        model.add_user("u1", "ann")
        with pytest.raises(PolicyError):
            model.add_user("u1", "other")

    def test_assign_unknown_role(self):
        model = RBACModel()
        model.add_group("g")
        with pytest.raises(PolicyError):
            model.assign("ghost", "p1", group="g")

    def test_assign_unknown_group(self):
        model = RBACModel()
        model.add_role("admin")
        with pytest.raises(PolicyError):
            model.assign("admin", "p1", group="ghost")

    def test_assign_unknown_user(self):
        model = RBACModel()
        model.add_role("admin")
        with pytest.raises(PolicyError):
            model.assign("admin", "p1", user_id="ghost")

    def test_get_user_missing(self):
        with pytest.raises(PolicyError):
            RBACModel().get_user("ghost")


class TestEffectiveRoles:
    def make_model(self):
        model = RBACModel()
        model.add_role("admin")
        model.add_role("member")
        model.add_group("admins")
        model.add_user("u1", "ann", ["admins"])
        model.add_user("u2", "bob")
        return model

    def test_group_mediated_role(self):
        model = self.make_model()
        model.assign("admin", "p1", group="admins")
        assert model.roles_for("u1", "p1") == {"admin"}
        assert model.roles_for("u2", "p1") == set()

    def test_direct_role(self):
        model = self.make_model()
        model.assign("member", "p1", user_id="u2")
        assert model.roles_for("u2", "p1") == {"member"}

    def test_roles_scoped_per_project(self):
        model = self.make_model()
        model.assign("admin", "p1", group="admins")
        assert model.roles_for("u1", "p2") == set()

    def test_union_of_direct_and_group(self):
        model = self.make_model()
        model.assign("admin", "p1", group="admins")
        model.assign("member", "p1", user_id="u1")
        assert model.roles_for("u1", "p1") == {"admin", "member"}

    def test_users_with_role(self):
        model = self.make_model()
        model.assign("admin", "p1", group="admins")
        assert model.users_with_role("admin", "p1") == ["u1"]

    def test_credentials_shape(self):
        model = self.make_model()
        model.assign("admin", "p1", group="admins")
        credentials = model.credentials_for("u1", "p1")
        assert credentials["roles"] == ["admin"]
        assert credentials["groups"] == ["admins"]
        assert credentials["project_id"] == "p1"
        assert credentials["user_id"] == "u1"


class TestPaperExample:
    def test_three_roles_three_groups(self):
        model = RBACModel.paper_example()
        assert set(model.roles) == {"admin", "member", "user"}
        assert set(model.groups) == {
            "proj_administrator", "service_architect", "business_analyst"}

    def test_role_mapping_matches_table1(self):
        model = RBACModel.paper_example()
        assert model.roles_for("alice", "myProject") == {"admin"}
        assert model.roles_for("bob", "myProject") == {"member"}
        assert model.roles_for("carol", "myProject") == {"user"}

    def test_custom_project_id(self):
        model = RBACModel.paper_example("other")
        assert model.roles_for("alice", "other") == {"admin"}
        assert model.roles_for("alice", "myProject") == set()
