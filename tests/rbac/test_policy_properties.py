"""Property-based tests for the policy rule engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rbac import PolicyRule

_ROLES = ("admin", "member", "user")
_GROUPS = ("proj_administrator", "service_architect", "business_analyst")

_atoms = st.one_of(
    st.sampled_from([f"role:{role}" for role in _ROLES]),
    st.sampled_from([f"group:{group}" for group in _GROUPS]),
    st.just("@"),
    st.just("!"),
)


def _rules(depth=3):
    if depth <= 0:
        return _atoms
    sub = _rules(depth - 1)
    return st.one_of(
        _atoms,
        st.tuples(sub, sub).map(lambda t: f"({t[0]} and {t[1]})"),
        st.tuples(sub, sub).map(lambda t: f"({t[0]} or {t[1]})"),
        sub.map(lambda r: f"not {r}"),
    )


_credentials = st.builds(
    lambda roles, groups: {"roles": list(roles), "groups": list(groups)},
    st.sets(st.sampled_from(_ROLES)),
    st.sets(st.sampled_from(_GROUPS)),
)


class TestRuleProperties:
    @given(_rules(), _credentials)
    @settings(max_examples=200, deadline=None)
    def test_every_generated_rule_parses_and_decides(self, source, creds):
        rule = PolicyRule("r", source)
        decision = rule.check(creds)
        assert isinstance(decision, bool)

    @given(_rules(), _credentials)
    @settings(max_examples=150, deadline=None)
    def test_decisions_deterministic(self, source, creds):
        rule = PolicyRule("r", source)
        assert rule.check(creds) == rule.check(creds)

    @given(_rules(), _credentials)
    @settings(max_examples=150, deadline=None)
    def test_negation_flips(self, source, creds):
        positive = PolicyRule("r", source).check(creds)
        negative = PolicyRule("r", f"not ({source})").check(creds)
        assert positive != negative

    @given(_rules(), _rules(), _credentials)
    @settings(max_examples=150, deadline=None)
    def test_or_is_upper_bound(self, a, b, creds):
        combined = PolicyRule("r", f"({a}) or ({b})").check(creds)
        assert combined == (PolicyRule("r", a).check(creds)
                            or PolicyRule("r", b).check(creds))

    @given(_rules(), _rules(), _credentials)
    @settings(max_examples=150, deadline=None)
    def test_and_is_lower_bound(self, a, b, creds):
        combined = PolicyRule("r", f"({a}) and ({b})").check(creds)
        assert combined == (PolicyRule("r", a).check(creds)
                            and PolicyRule("r", b).check(creds))

    @given(_rules(), _credentials)
    @settings(max_examples=100, deadline=None)
    def test_deny_all_dominates_and(self, source, creds):
        assert PolicyRule("r", f"! and ({source})").check(creds) is False

    @given(_rules(), _credentials)
    @settings(max_examples=100, deadline=None)
    def test_allow_all_dominates_or(self, source, creds):
        assert PolicyRule("r", f"@ or ({source})").check(creds) is True

    @given(_credentials)
    @settings(max_examples=50, deadline=None)
    def test_role_check_exact(self, creds):
        for role in _ROLES:
            expected = role in creds["roles"]
            assert PolicyRule("r", f"role:{role}").check(creds) == expected
