"""Tests for the policy.json rule engine."""

import pytest

from repro.errors import PolicyError
from repro.rbac import Enforcer, PolicyRule, parse_policy

ADMIN = {"roles": ["admin"], "groups": ["proj_administrator"], "user_id": "u1"}
MEMBER = {"roles": ["member"], "groups": ["service_architect"], "user_id": "u2"}
NOBODY = {"roles": [], "groups": [], "user_id": "u3"}


class TestAtoms:
    def test_role_check(self):
        rule = PolicyRule("r", "role:admin")
        assert rule.check(ADMIN)
        assert not rule.check(MEMBER)

    def test_group_check(self):
        rule = PolicyRule("r", "group:service_architect")
        assert rule.check(MEMBER)
        assert not rule.check(ADMIN)

    def test_allow_all(self):
        assert PolicyRule("r", "@").check(NOBODY)

    def test_deny_all(self):
        assert not PolicyRule("r", "!").check(ADMIN)

    def test_empty_rule_allows(self):
        # oslo.policy semantics: an empty rule always passes.
        assert PolicyRule("r", "").check(NOBODY)

    def test_target_template_check(self):
        rule = PolicyRule("r", "user_id:%(owner)s")
        assert rule.check(ADMIN, target={"owner": "u1"})
        assert not rule.check(ADMIN, target={"owner": "u9"})

    def test_literal_credential_check(self):
        rule = PolicyRule("r", "project_id:p1")
        assert rule.check({"project_id": "p1"})
        assert not rule.check({"project_id": "p2"})


class TestConnectives:
    def test_or(self):
        rule = PolicyRule("r", "role:admin or role:member")
        assert rule.check(ADMIN)
        assert rule.check(MEMBER)
        assert not rule.check(NOBODY)

    def test_and(self):
        rule = PolicyRule("r", "role:admin and group:proj_administrator")
        assert rule.check(ADMIN)
        assert not rule.check(MEMBER)

    def test_not(self):
        rule = PolicyRule("r", "not role:admin")
        assert not rule.check(ADMIN)
        assert rule.check(MEMBER)

    def test_parentheses(self):
        rule = PolicyRule("r", "(role:admin or role:member) and not group:blocked")
        assert rule.check(ADMIN)
        blocked = {"roles": ["admin"], "groups": ["blocked"]}
        assert not rule.check(blocked)

    def test_precedence_and_over_or(self):
        rule = PolicyRule("r", "role:a or role:b and role:c")
        assert rule.check({"roles": ["a"], "groups": []})
        assert not rule.check({"roles": ["b"], "groups": []})
        assert rule.check({"roles": ["b", "c"], "groups": []})


class TestRuleReferences:
    def make_enforcer(self):
        return Enforcer.from_dict({
            "admin_required": "role:admin",
            "volume:delete": "rule:admin_required",
            "volume:get": "rule:admin_required or role:member or role:user",
        })

    def test_rule_reference(self):
        enforcer = self.make_enforcer()
        assert enforcer.enforce("volume:delete", ADMIN)
        assert not enforcer.enforce("volume:delete", MEMBER)

    def test_nested_reference(self):
        enforcer = self.make_enforcer()
        assert enforcer.enforce("volume:get", MEMBER)

    def test_unknown_rule_reference_raises(self):
        enforcer = Enforcer.from_dict({"a": "rule:ghost"})
        with pytest.raises(PolicyError):
            enforcer.enforce("a", ADMIN)

    def test_circular_reference_detected(self):
        enforcer = Enforcer.from_dict({"a": "rule:b", "b": "rule:a"})
        with pytest.raises(PolicyError):
            enforcer.enforce("a", ADMIN)


class TestEnforcer:
    def test_unknown_action_default_deny(self):
        assert not Enforcer().enforce("ghost", ADMIN)

    def test_unknown_action_default_override(self):
        assert Enforcer().enforce("ghost", ADMIN, default=True)

    def test_set_rule_replaces(self):
        enforcer = Enforcer.from_dict({"volume:delete": "role:admin"})
        enforcer.set_rule("volume:delete", "role:member")
        assert enforcer.enforce("volume:delete", MEMBER)
        assert not enforcer.enforce("volume:delete", ADMIN)

    def test_from_json(self):
        enforcer = parse_policy('{"volume:get": "role:admin"}')
        assert enforcer.enforce("volume:get", ADMIN)

    def test_from_json_malformed(self):
        with pytest.raises(PolicyError):
            parse_policy("{nope")

    def test_from_json_non_object(self):
        with pytest.raises(PolicyError):
            parse_policy("[1, 2]")

    def test_to_dict_round_trip(self):
        mapping = {"volume:get": "role:admin or role:member"}
        assert Enforcer.from_dict(mapping).to_dict() == mapping


class TestParseErrors:
    @pytest.mark.parametrize("source", [
        "role:admin or",
        "and role:admin",
        "(role:admin",
        "role:admin )",
        "###",
    ])
    def test_malformed_rules(self, source):
        with pytest.raises(PolicyError):
            PolicyRule("r", source)
