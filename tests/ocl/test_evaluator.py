"""Tests for OCL evaluation, undefined semantics, and snapshots."""

import pytest

from repro.errors import OCLEvaluationError, OCLNameError, OCLTypeError
from repro.ocl import (
    UNDEFINED,
    Context,
    Evaluator,
    Snapshot,
    collect_pre_expressions,
    evaluate,
    is_defined,
    parse,
)


class TestLiteralsAndNames:
    def test_literal(self):
        assert evaluate("42", {}) == 42

    def test_name_lookup(self):
        assert evaluate("x", {"x": 7}) == 7

    def test_unbound_name_strict(self):
        with pytest.raises(OCLNameError):
            evaluate("missing", {})

    def test_unbound_name_lenient(self):
        context = Context({}, strict=False)
        assert evaluate("missing", context=context) is UNDEFINED


class TestNavigation:
    def test_dict_navigation(self):
        assert evaluate("project.id", {"project": {"id": "p1"}}) == "p1"

    def test_missing_key_is_undefined(self):
        assert evaluate("project.nope", {"project": {}}) is UNDEFINED

    def test_navigation_from_undefined_is_undefined(self):
        assert evaluate("project.a.b.c", {"project": {}}) is UNDEFINED

    def test_chained(self):
        bindings = {"user": {"id": {"groups": "admin"}}}
        assert evaluate("user.id.groups", bindings) == "admin"

    def test_navigation_over_list_collects(self):
        bindings = {"volumes": [{"status": "in-use"}, {"status": "available"}]}
        assert evaluate("volumes.status", bindings) == ["in-use", "available"]

    def test_navigation_over_list_skips_undefined(self):
        bindings = {"volumes": [{"status": "in-use"}, {}]}
        assert evaluate("volumes.status", bindings) == ["in-use"]


class TestConnectives:
    def test_and(self):
        assert evaluate("true and true", {}) is True
        assert evaluate("true and false", {}) is False

    def test_or(self):
        assert evaluate("false or true", {}) is True
        assert evaluate("false or false", {}) is False

    def test_xor(self):
        assert evaluate("true xor false", {}) is True
        assert evaluate("true xor true", {}) is False

    def test_implies_truth_table(self):
        assert evaluate("false implies false", {}) is True
        assert evaluate("false implies true", {}) is True
        assert evaluate("true implies false", {}) is False
        assert evaluate("true implies true", {}) is True

    def test_not(self):
        assert evaluate("not false", {}) is True

    def test_undefined_operand_counts_as_false(self):
        assert evaluate("project.nope and true", {"project": {}}) is False
        assert evaluate("project.nope or true", {"project": {}}) is True
        assert evaluate("not project.nope", {"project": {}}) is True

    def test_paper_implication_operator(self):
        assert evaluate("1 = 2 => 3 = 4", {}) is True


class TestComparisons:
    def test_equality(self):
        assert evaluate("1 = 1", {}) is True
        assert evaluate("'a' = 'a'", {}) is True
        assert evaluate("1 = 2", {}) is False

    def test_inequality(self):
        assert evaluate("volume.status <> 'in-use'",
                        {"volume": {"status": "available"}}) is True

    def test_bool_int_not_conflated(self):
        assert evaluate("x = 1", {"x": True}) is False

    def test_ordering(self):
        assert evaluate("2 < 3", {}) is True
        assert evaluate("3 <= 3", {}) is True
        assert evaluate("'a' < 'b'", {}) is True

    def test_undefined_comparison_is_false(self):
        assert evaluate("project.nope < 3", {"project": {}}) is False
        assert evaluate("project.nope = 3", {"project": {}}) is False

    def test_undefined_equals_undefined(self):
        assert evaluate("project.a = project.b", {"project": {}}) is True

    def test_incomparable_types_raise(self):
        with pytest.raises(OCLTypeError):
            evaluate("'a' < 1", {})


class TestArithmetic:
    def test_basic(self):
        assert evaluate("1 + 2 * 3", {}) == 7
        assert evaluate("10 - 4", {}) == 6

    def test_division_integral_result(self):
        assert evaluate("10 / 2", {}) == 5
        assert isinstance(evaluate("10 / 2", {}), int)

    def test_division_fractional(self):
        assert evaluate("7 / 2", {}) == 3.5

    def test_division_by_zero_is_undefined(self):
        assert evaluate("1 / 0", {}) is UNDEFINED

    def test_string_concat_with_plus(self):
        assert evaluate("'a' + 'b'", {}) == "ab"

    def test_unary_minus(self):
        assert evaluate("-x", {"x": 5}) == -5

    def test_type_error(self):
        with pytest.raises(OCLTypeError):
            evaluate("1 + 'a'", {})


class TestCollectionOps:
    BINDINGS = {"xs": [1, 2, 2, 3], "empty": [], "scalar": 5}

    def test_size(self):
        assert evaluate("xs->size()", self.BINDINGS) == 4

    def test_size_of_scalar_is_one(self):
        # OCL coerces a single object to a bag of one: project.id->size()=1.
        assert evaluate("scalar->size()", self.BINDINGS) == 1

    def test_size_of_undefined_is_zero(self):
        assert evaluate("p.nope->size()", {"p": {}}) == 0

    def test_is_empty_not_empty(self):
        assert evaluate("empty->isEmpty()", self.BINDINGS) is True
        assert evaluate("xs->notEmpty()", self.BINDINGS) is True

    def test_includes_excludes(self):
        assert evaluate("xs->includes(2)", self.BINDINGS) is True
        assert evaluate("xs->excludes(9)", self.BINDINGS) is True

    def test_including_excluding(self):
        assert evaluate("xs->including(9)->size()", self.BINDINGS) == 5
        assert evaluate("xs->excluding(2)->size()", self.BINDINGS) == 2

    def test_count(self):
        assert evaluate("xs->count(2)", self.BINDINGS) == 2

    def test_sum_min_max(self):
        assert evaluate("xs->sum()", self.BINDINGS) == 8
        assert evaluate("xs->min()", self.BINDINGS) == 1
        assert evaluate("xs->max()", self.BINDINGS) == 3

    def test_min_of_empty_is_undefined(self):
        assert evaluate("empty->min()", self.BINDINGS) is UNDEFINED

    def test_first_last_at(self):
        assert evaluate("xs->first()", self.BINDINGS) == 1
        assert evaluate("xs->last()", self.BINDINGS) == 3
        assert evaluate("xs->at(2)", self.BINDINGS) == 2  # 1-based

    def test_at_out_of_range(self):
        assert evaluate("xs->at(99)", self.BINDINGS) is UNDEFINED

    def test_as_set(self):
        assert evaluate("xs->asSet()->size()", self.BINDINGS) == 3

    def test_union_intersection(self):
        bindings = {"a": [1, 2], "b": [2, 3]}
        assert evaluate("a->union(b)->size()", bindings) == 4
        assert evaluate("a->intersection(b)", bindings) == [2]

    def test_unknown_operation(self):
        with pytest.raises(OCLEvaluationError):
            evaluate("xs->frobnicate()", self.BINDINGS)

    def test_wrong_arity(self):
        with pytest.raises(OCLEvaluationError):
            evaluate("xs->includes()", self.BINDINGS)


class TestIterators:
    USERS = {"users": [
        {"name": "ann", "role": "admin"},
        {"name": "bob", "role": "member"},
        {"name": "cat", "role": "admin"},
    ]}

    def test_select(self):
        result = evaluate("users->select(u | u.role = 'admin')", self.USERS)
        assert [u["name"] for u in result] == ["ann", "cat"]

    def test_reject(self):
        result = evaluate("users->reject(u | u.role = 'admin')", self.USERS)
        assert [u["name"] for u in result] == ["bob"]

    def test_collect(self):
        assert evaluate("users->collect(u | u.name)", self.USERS) == [
            "ann", "bob", "cat"]

    def test_for_all(self):
        assert evaluate("users->forAll(u | u.role <> 'guest')", self.USERS) is True
        assert evaluate("users->forAll(u | u.role = 'admin')", self.USERS) is False

    def test_exists(self):
        assert evaluate("users->exists(u | u.name = 'bob')", self.USERS) is True

    def test_one(self):
        assert evaluate("users->one(u | u.role = 'member')", self.USERS) is True
        assert evaluate("users->one(u | u.role = 'admin')", self.USERS) is False

    def test_any(self):
        result = evaluate("users->any(u | u.role = 'admin')", self.USERS)
        assert result["name"] == "ann"

    def test_any_no_match_is_undefined(self):
        assert evaluate("users->any(u | u.role = 'x')", self.USERS) is UNDEFINED

    def test_is_unique(self):
        assert evaluate("users->isUnique(u | u.name)", self.USERS) is True
        assert evaluate("users->isUnique(u | u.role)", self.USERS) is False

    def test_iterator_scoping_restores_outer(self):
        bindings = {"u": "outer", "xs": [1, 2]}
        assert evaluate("xs->collect(u | u)->size() = 2 and u = 'outer'",
                        bindings) is True


class TestMethodCalls:
    def test_ocl_is_undefined(self):
        assert evaluate("p.nope.oclIsUndefined()", {"p": {}}) is True
        assert evaluate("p.id.oclIsUndefined()", {"p": {"id": 1}}) is False

    def test_abs_floor_round(self):
        assert evaluate("x.abs()", {"x": -3}) == 3
        assert evaluate("x.floor()", {"x": 2.9}) == 2
        assert evaluate("x.round()", {"x": 2.5}) == 2

    def test_string_methods(self):
        assert evaluate("'ab'.concat('cd')", {}) == "abcd"
        assert evaluate("'ab'.toUpper()", {}) == "AB"
        assert evaluate("'AB'.toLower()", {}) == "ab"
        assert evaluate("'hello'.substring(2, 4)", {}) == "ell"

    def test_unknown_method(self):
        with pytest.raises(OCLEvaluationError):
            evaluate("x.nothing()", {"x": 1})


class TestSnapshots:
    def test_collect_pre_expressions(self):
        expression = "a < pre(b) and pre(b) = pre(c)"
        pres = collect_pre_expressions(expression)
        assert len(pres) == 3

    def test_capture_deduplicates_structurally(self):
        context = Context({"b": 1, "c": 2, "a": 0})
        snapshot = Snapshot().capture("a < pre(b) and pre(b) = pre(c)", context)
        assert len(snapshot) == 2

    def test_post_state_evaluation_uses_old_values(self):
        post = "project.volumes->size() < pre(project.volumes->size())"
        before = Context({"project": {"volumes": ["v1", "v2"]}})
        snapshot = Snapshot().capture(post, before)
        after = Context({"project": {"volumes": ["v1"]}})
        assert Evaluator(after, snapshot).evaluate_bool(post) is True

    def test_post_state_detects_no_change(self):
        post = "project.volumes->size() < pre(project.volumes->size())"
        before = Context({"project": {"volumes": ["v1"]}})
        snapshot = Snapshot().capture(post, before)
        assert Evaluator(before, snapshot).evaluate_bool(post) is False

    def test_pre_without_snapshot_evaluates_current(self):
        assert evaluate("pre(x) = x", {"x": 3}) is True

    def test_missing_snapshot_value_raises(self):
        snapshot = Snapshot()
        node = parse("pre(x)")
        with pytest.raises(OCLEvaluationError):
            Evaluator(Context({"x": 1}), snapshot).evaluate(node)

    def test_at_pre_equivalent_to_pre_function(self):
        before = Context({"x": 10})
        snapshot = Snapshot().capture("x@pre - x", before)
        after = Context({"x": 4})
        assert Evaluator(after, snapshot).evaluate("x@pre - x") == 6

    def test_storage_bytes_small(self):
        # Paper Section V: snapshots should cost a handful of bytes.
        context = Context({"project": {"volumes": [1, 2, 3]}})
        snapshot = Snapshot().capture(
            "project.volumes->size() < pre(project.volumes->size())", context)
        assert 0 < snapshot.storage_bytes <= 16

    def test_nested_pre_collapses(self):
        pres = collect_pre_expressions("pre(pre(x))")
        assert len(pres) == 1


class TestIsDefined:
    def test_defined(self):
        assert is_defined(0)
        assert is_defined(None)  # None is a value; UNDEFINED is not

    def test_undefined(self):
        assert not is_defined(UNDEFINED)


class TestPaperInvariants:
    """Evaluate the paper's Figure-3 state invariants against concrete state."""

    def test_project_with_no_volume(self):
        invariant = "project.id->size()=1 and project.volumes->size()=0"
        state = {"project": {"id": "p1", "volumes": []}}
        assert evaluate(invariant, state) is True

    def test_project_with_volume_not_full_quota(self):
        invariant = ("project.id->size()=1 and project.volumes->size()>=1 "
                     "and project.volumes->size() < quota_sets.volumes")
        state = {
            "project": {"id": "p1", "volumes": ["v1"]},
            "quota_sets": {"volumes": 10},
        }
        assert evaluate(invariant, state) is True

    def test_project_with_volume_full_quota(self):
        invariant = ("project.id->size()=1 and "
                     "project.volumes->size() = quota_sets.volumes")
        state = {
            "project": {"id": "p1", "volumes": ["v1", "v2"]},
            "quota_sets": {"volumes": 2},
        }
        assert evaluate(invariant, state) is True

    def test_delete_guard(self):
        guard = "volume.status <> 'in-use' and user.groups->includes('admin')"
        state = {
            "volume": {"status": "available"},
            "user": {"groups": ["admin"]},
        }
        assert evaluate(guard, state) is True
        state["volume"]["status"] = "in-use"
        assert evaluate(guard, state) is False
