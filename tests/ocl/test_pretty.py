"""Tests for the OCL pretty-printer, including property-based round trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ocl import parse, to_text
from repro.ocl.nodes import (
    ArrowCall,
    Binary,
    IteratorCall,
    Literal,
    MethodCall,
    Name,
    Navigation,
    Pre,
    Unary,
    conjoin,
    disjoin,
)


class TestRendering:
    def test_literals(self):
        assert to_text(Literal(42)) == "42"
        assert to_text(Literal(True)) == "true"
        assert to_text(Literal(False)) == "false"
        assert to_text(Literal(None)) == "null"
        assert to_text(Literal("in-use")) == "'in-use'"

    def test_string_escaping(self):
        assert to_text(Literal("it's")) == r"'it\'s'"

    def test_navigation(self):
        assert to_text(parse("a.b.c")) == "a.b.c"

    def test_arrow_call(self):
        assert to_text(parse("xs->size()")) == "xs->size()"

    def test_iterator_with_variable(self):
        assert to_text(parse("xs->select(v | v > 1)")) == "xs->select(v | v > 1)"

    def test_iterator_default_variable(self):
        assert to_text(parse("xs->exists(self = 1)")) == "xs->exists(self = 1)"

    def test_pre(self):
        assert to_text(parse("pre(x->size())")) == "pre(x->size())"

    def test_at_pre_renders_as_pre_function(self):
        assert to_text(parse("x@pre")) == "pre(x)"

    def test_method_call(self):
        assert to_text(parse("x.oclIsUndefined()")) == "x.oclIsUndefined()"

    def test_not(self):
        assert to_text(parse("not a")) == "not a"


class TestParenthesization:
    def test_no_redundant_parens(self):
        assert to_text(parse("a and b and c")) == "a and b and c"

    def test_or_under_and_parenthesized(self):
        assert to_text(parse("(a or b) and c")) == "(a or b) and c"

    def test_and_under_or_not_parenthesized(self):
        assert to_text(parse("a and b or c")) == "a and b or c"

    def test_implies_right_assoc_rendering(self):
        text = to_text(parse("a implies (b implies c)"))
        assert text == "a implies b implies c"

    def test_implies_left_nested_keeps_parens(self):
        text = to_text(parse("(a implies b) implies c"))
        assert text == "(a implies b) implies c"

    def test_arithmetic_parens(self):
        assert to_text(parse("(1 + 2) * 3")) == "(1 + 2) * 3"
        assert to_text(parse("1 + 2 * 3")) == "1 + 2 * 3"

    def test_left_associative_subtraction(self):
        assert to_text(parse("1 - (2 - 3)")) == "1 - (2 - 3)"
        assert to_text(parse("1 - 2 - 3")) == "1 - 2 - 3"

    def test_comparison_operand_parens(self):
        assert to_text(parse("(a and b) = c")) == "(a and b) = c"


class TestHelpers:
    def test_conjoin_empty(self):
        assert to_text(conjoin([])) == "true"

    def test_conjoin_many(self):
        terms = [parse("a"), parse("b"), parse("c")]
        assert to_text(conjoin(terms)) == "a and b and c"

    def test_disjoin_empty(self):
        assert to_text(disjoin([])) == "false"

    def test_disjoin_many(self):
        terms = [parse("a = 1"), parse("b = 2")]
        assert to_text(disjoin(terms)) == "a = 1 or b = 2"


# -- property-based round trip ------------------------------------------------

_names = st.sampled_from(["project", "volume", "user", "quota_sets", "x", "y"])
_attrs = st.sampled_from(["id", "status", "volumes", "groups", "size_gb"])


def _literals():
    return st.one_of(
        st.integers(min_value=0, max_value=1000).map(Literal),
        st.booleans().map(Literal),
        st.sampled_from(["in-use", "available", "admin"]).map(Literal),
    )


def _expressions(depth=3):
    if depth <= 0:
        return st.one_of(_literals(), _names.map(Name))
    sub = _expressions(depth - 1)
    return st.one_of(
        _literals(),
        _names.map(Name),
        st.tuples(sub, _attrs).map(lambda t: Navigation(t[0], t[1])),
        st.tuples(sub, st.sampled_from(["size", "isEmpty", "notEmpty"])).map(
            lambda t: ArrowCall(t[0], t[1])),
        st.tuples(sub, st.sampled_from(["select", "exists", "forAll"]),
                  st.sampled_from(["v", "u"]), sub).map(
            lambda t: IteratorCall(t[0], t[1], t[2], t[3])),
        st.tuples(st.sampled_from(["and", "or", "implies", "=", "<>", "+"]),
                  sub, sub).map(lambda t: Binary(t[0], t[1], t[2])),
        st.tuples(sub).map(lambda t: Pre(t[0])),
        st.tuples(sub).map(lambda t: Unary("not", t[0])),
        st.tuples(sub).map(lambda t: MethodCall(t[0], "oclIsUndefined")),
    )


class TestRoundTripProperties:
    @given(_expressions())
    @settings(max_examples=200, deadline=None)
    def test_parse_of_to_text_is_identity(self, expression):
        rendered = to_text(expression)
        assert parse(rendered) == expression

    @given(_expressions())
    @settings(max_examples=100, deadline=None)
    def test_to_text_is_stable(self, expression):
        once = to_text(expression)
        twice = to_text(parse(once))
        assert once == twice
