"""Tests for the OCL closure compiler, including interpreter equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OCLEvaluationError, OCLNameError, OCLTypeError
from repro.ocl import (
    Context,
    Evaluator,
    Snapshot,
    compile_bool,
    compile_expression,
    evaluate,
    parse,
)
from repro.ocl.nodes import (
    ArrowCall,
    Binary,
    Conditional,
    IteratorCall,
    Let,
    Literal,
    MethodCall,
    Name,
    Navigation,
    Pre,
    Unary,
)

BINDINGS = {
    "project": {"volumes": [{"id": "v1", "status": "available"},
                            {"id": "v2", "status": "in-use"}]},
    "quota_sets": {"volumes": 5},
    "user": {"roles": ["admin"], "groups": ["proj_administrator"]},
    "x": 7,
    "s": "hello",
}


def both(expression, bindings=None):
    context = Context(bindings or BINDINGS, strict=False)
    interpreted = Evaluator(context).evaluate(expression)
    compiled = compile_expression(expression)(context)
    return interpreted, compiled


class TestBasicEquivalence:
    @pytest.mark.parametrize("expression", [
        "42",
        "'in-use'",
        "true and false or true",
        "x + 3 * 2",
        "x / 0",
        "-x",
        "not (x > 3)",
        "project.volumes->size()",
        "project.volumes->size() < quota_sets.volumes",
        "user.roles->includes('admin')",
        "project.volumes->select(v | v.status = 'in-use')->size()",
        "project.volumes->forAll(v | v.id->size() = 1)",
        "project.volumes->collect(v | v.status)->asSet()->size()",
        "let n = project.volumes->size() in n * n",
        "if x > 3 then 'big' else 'small' endif",
        "s.toUpper()",
        "s.substring(2, 4)",
        "x.oclIsUndefined()",
        "ghost.path->size()",
        "1 = 2 implies 3 = 4",
        "project.volumes->first().status",
        "project.volumes->at(2).id",
    ])
    def test_matches_interpreter(self, expression):
        interpreted, compiled = both(expression)
        assert interpreted == compiled

    def test_compile_bool_coerces(self):
        context = Context(BINDINGS, strict=False)
        assert compile_bool("ghost.thing")(context) is False

    def test_unbound_name_raises_strict(self):
        context = Context({}, strict=True)
        with pytest.raises(OCLNameError):
            compile_expression("missing")(context)

    def test_type_error_propagates(self):
        context = Context({"a": "text"})
        with pytest.raises(OCLTypeError):
            compile_expression("a < 3")(context)

    def test_unknown_operation_raises_at_run(self):
        context = Context({"xs": [1]})
        with pytest.raises(OCLEvaluationError):
            compile_expression("xs->frobnicate()")(context)

    def test_compiled_is_reusable(self):
        compiled = compile_expression("x + 1")
        assert compiled(Context({"x": 1})) == 2
        assert compiled(Context({"x": 10})) == 11


class TestSnapshotSupport:
    def test_pre_with_snapshot(self):
        post = "project.volumes->size() < pre(project.volumes->size())"
        before = Context({"project": {"volumes": [1, 2]}}, strict=False)
        snapshot = Snapshot().capture(post, before)
        after = Context({"project": {"volumes": [1]}}, strict=False)
        assert compile_bool(post)(after, snapshot) is True
        assert compile_bool(post)(before, snapshot) is False

    def test_pre_without_snapshot_uses_current(self):
        context = Context({"x": 3})
        assert compile_expression("pre(x) = x")(context) is True

    def test_snapshot_parity_with_interpreter(self):
        post = ("pre(project.volumes->size()) - project.volumes->size() = 1"
                " and user.roles->includes('admin')")
        before = Context(BINDINGS, strict=False)
        snapshot = Snapshot().capture(post, before)
        after_bindings = dict(BINDINGS)
        after_bindings["project"] = {"volumes": [{"id": "v1"}]}
        after = Context(after_bindings, strict=False)
        interpreted = Evaluator(after, snapshot).evaluate_bool(post)
        compiled = compile_bool(post)(after, snapshot)
        assert interpreted == compiled is True


# -- property-based equivalence --------------------------------------------------

_names = st.sampled_from(["project", "user", "x", "s"])
_attrs = st.sampled_from(["volumes", "roles", "status", "id"])


def _expressions(depth=3):
    literals = st.one_of(
        st.integers(min_value=0, max_value=20).map(Literal),
        st.booleans().map(Literal),
        st.sampled_from(["in-use", "admin"]).map(Literal),
    )
    if depth <= 0:
        return st.one_of(literals, _names.map(Name))
    sub = _expressions(depth - 1)
    return st.one_of(
        literals,
        _names.map(Name),
        st.tuples(sub, _attrs).map(lambda t: Navigation(*t)),
        st.tuples(sub, st.sampled_from(["size", "isEmpty", "asSet"])).map(
            lambda t: ArrowCall(*t)),
        st.tuples(sub, st.sampled_from(["select", "exists", "collect"]),
                  st.just("v"), sub).map(lambda t: IteratorCall(*t)),
        st.tuples(st.sampled_from(["and", "or", "implies", "=", "<>", "+"]),
                  sub, sub).map(lambda t: Binary(*t)),
        sub.map(lambda e: Unary("not", e)),
        sub.map(Pre),
        st.tuples(st.just("n"), sub, sub).map(lambda t: Let(*t)),
        st.tuples(sub, sub, sub).map(lambda t: Conditional(*t)),
        st.tuples(sub).map(lambda t: MethodCall(t[0], "oclIsUndefined")),
    )


class TestPropertyEquivalence:
    @given(_expressions())
    @settings(max_examples=300, deadline=None)
    def test_compiler_matches_interpreter(self, expression):
        context = Context(BINDINGS, strict=False)
        try:
            interpreted = Evaluator(context).evaluate(expression)
            interpreter_error = None
        except Exception as exc:  # noqa: BLE001 - parity includes errors
            interpreted = None
            interpreter_error = type(exc)
        try:
            compiled = compile_expression(expression)(context)
            compiler_error = None
        except Exception as exc:  # noqa: BLE001
            compiled = None
            compiler_error = type(exc)
        assert interpreter_error == compiler_error
        if interpreter_error is None:
            assert interpreted == compiled
