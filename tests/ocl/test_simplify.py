"""Tests for the OCL simplifier, including equivalence properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ocl import evaluate, parse, simplify, to_text
from repro.ocl.nodes import Binary, Literal, Name, Pre, Unary


def text(source):
    return to_text(simplify(source))


class TestConnectiveSimplification:
    def test_and_true_unit(self):
        assert text("x and true") == "x"
        assert text("true and x") == "x"

    def test_and_false_absorbs(self):
        assert text("x and false") == "false"

    def test_or_false_unit(self):
        assert text("x or false") == "x"

    def test_or_true_absorbs(self):
        assert text("x or true") == "true"

    def test_duplicate_conjuncts_collapse(self):
        assert text("x and x") == "x"
        assert text("x and y and x") == "x and y"

    def test_duplicate_disjuncts_collapse(self):
        assert text("x or x or y") == "x or y"

    def test_nested_units_removed(self):
        assert text("(x and true) or (false or y)") == "x or y"

    def test_implies_constant_sides(self):
        assert text("false implies x") == "true"
        assert text("true implies x") == "x"
        assert text("x implies true") == "true"

    def test_xor(self):
        assert text("true xor false") == "true"
        assert text("x xor x") == "false"

    def test_double_negation(self):
        assert text("not not x") == "x"

    def test_not_literal(self):
        assert text("not true") == "false"


class TestComparisonFolding:
    def test_numeric_comparisons(self):
        assert text("1 < 2") == "true"
        assert text("3 <= 2") == "false"
        assert text("2 = 2") == "true"
        assert text("2 <> 2") == "false"

    def test_string_equality(self):
        assert text("'a' = 'a'") == "true"
        assert text("'a' <> 'b'") == "true"

    def test_bool_int_not_conflated(self):
        assert text("true = 1") == "false"

    def test_pure_syntactic_equality(self):
        assert text("x + 1 = x + 1") == "true"
        assert text("x <> x") == "false"

    def test_impure_equality_kept(self):
        # Navigation may change between evaluations; keep it.
        assert text("a.b = a.b") == "a.b = a.b"

    def test_arrow_calls_not_folded(self):
        assert "size" in text("xs->size() = xs->size()")


class TestStructural:
    def test_conditional_folding(self):
        assert text("if true then a else b endif") == "a"
        assert text("if false then a else b endif") == "b"
        assert text("if c then a else b endif") == "if c then a else b endif"

    def test_pre_of_constant_unwrapped(self):
        assert text("pre(3)") == "3"

    def test_pre_of_expression_kept(self):
        assert text("pre(x->size())") == "pre(x->size())"

    def test_simplification_inside_iterator_body(self):
        assert text("xs->select(v | v > 1 and true)") == \
            "xs->select(v | v > 1)"

    def test_contract_shaped_input(self):
        source = ("(project.id->size() = 1 and true) or false or "
                  "(project.id->size() = 1 and true)")
        assert text(source) == "project.id->size() = 1"

    def test_accepts_ast_input(self):
        node = Binary("and", Name("x"), Literal(True))
        assert simplify(node) == Name("x")


# -- equivalence property -------------------------------------------------------

_leaves = st.one_of(
    st.booleans().map(Literal),
    st.sampled_from(["p", "q", "r"]).map(Name),
)


def _expressions(depth=3):
    if depth <= 0:
        return _leaves
    sub = _expressions(depth - 1)
    return st.one_of(
        _leaves,
        st.tuples(st.sampled_from(["and", "or", "xor", "implies", "=", "<>"]),
                  sub, sub).map(lambda t: Binary(t[0], t[1], t[2])),
        sub.map(lambda e: Unary("not", e)),
    )


_bindings = st.fixed_dictionaries({
    "p": st.booleans(), "q": st.booleans(), "r": st.booleans()})


class TestEquivalenceProperties:
    @given(_expressions(), _bindings)
    @settings(max_examples=300, deadline=None)
    def test_simplify_preserves_value(self, expression, bindings):
        assert evaluate(simplify(expression), bindings) == \
            evaluate(expression, bindings)

    @given(_expressions())
    @settings(max_examples=150, deadline=None)
    def test_simplify_idempotent(self, expression):
        once = simplify(expression)
        assert simplify(once) == once

    @given(_expressions())
    @settings(max_examples=150, deadline=None)
    def test_simplified_not_larger(self, expression):
        assert len(list(simplify(expression).walk())) <= \
            len(list(expression.walk()))

    @given(_expressions())
    @settings(max_examples=100, deadline=None)
    def test_simplified_round_trips_through_text(self, expression):
        simplified = simplify(expression)
        assert parse(to_text(simplified)) == simplified
