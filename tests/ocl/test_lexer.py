"""Tests for the OCL tokenizer."""

import pytest

from repro.errors import OCLSyntaxError
from repro.ocl import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != "EOF"]


class TestBasicTokens:
    def test_name(self):
        assert texts("project") == ["project"]
        assert kinds("project") == ["NAME", "EOF"]

    def test_keywords(self):
        assert kinds("and or not implies true false null xor") == [
            "KEYWORD"] * 8 + ["EOF"]

    def test_integer(self):
        tokens = tokenize("42")
        assert tokens[0].kind == "INT"
        assert tokens[0].text == "42"

    def test_real(self):
        tokens = tokenize("3.14")
        assert tokens[0].kind == "REAL"
        assert tokens[0].text == "3.14"

    def test_int_dot_name_is_not_real(self):
        # '1.volumes' must lex as INT '.' NAME, not a malformed real.
        assert [t.kind for t in tokenize("1.volumes")] == [
            "INT", "OP", "NAME", "EOF"]

    def test_single_quoted_string(self):
        tokens = tokenize("'in-use'")
        assert tokens[0].kind == "STRING"
        assert tokens[0].text == "in-use"

    def test_double_quoted_string(self):
        assert tokenize('"admin"')[0].text == "admin"

    def test_string_escape(self):
        assert tokenize(r"'it\'s'")[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(OCLSyntaxError):
            tokenize("'oops")

    def test_underscore_names(self):
        assert texts("quota_sets project_id") == ["quota_sets", "project_id"]


class TestOperators:
    def test_arrow_is_single_token(self):
        assert texts("a->size") == ["a", "->", "size"]

    def test_comparison_operators(self):
        assert texts("a <= b >= c <> d = e") == [
            "a", "<=", "b", ">=", "c", "<>", "d", "=", "e"]

    def test_implication_aliases(self):
        # The paper writes => and ==> for implication (Listing 1).
        assert texts("a => b") == ["a", "implies", "b"]
        assert texts("a ==> b") == ["a", "implies", "b"]

    def test_at_pre(self):
        assert texts("x@pre") == ["x", "@pre"]

    def test_arithmetic(self):
        assert texts("a + b * c / d - e") == [
            "a", "+", "b", "*", "c", "/", "d", "-", "e"]

    def test_parens_comma_pipe(self):
        assert texts("f(a, b | c)") == ["f", "(", "a", ",", "b", "|", "c", ")"]

    def test_unexpected_character(self):
        with pytest.raises(OCLSyntaxError):
            tokenize("a # b")


class TestPositions:
    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_line_numbers(self):
        tokens = tokenize("a\nand\nb")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_whitespace_only(self):
        assert kinds("   \n\t ") == ["EOF"]

    def test_paper_listing_fragment(self):
        source = ("project.id->size()=1 and project.volumes->size()>=1 and "
                  "volume.status <> 'in-use' and user.id.groups='admin'")
        token_texts = texts(source)
        assert "in-use" in token_texts
        assert "->" in token_texts
        assert token_texts.count("and") == 3
