"""Fuzzing the OCL parser and the policy rule parser.

Contract texts and policy rules are user-authored; arbitrary input must
either parse or raise the documented error type -- never an internal
exception -- and parsing must terminate quickly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OCLSyntaxError, PolicyError
from repro.ocl import evaluate, parse, to_text
from repro.ocl.values import UNDEFINED
from repro.rbac import PolicyRule

_TOKENS = st.sampled_from([
    "project", "volume", "x", "pre", "let", "in", "if", "then", "else",
    "endif", "and", "or", "not", "implies", "true", "false", "null",
    "->", ".", "(", ")", "=", "<>", "<", ">", "<=", ">=", "+", "-", "*",
    "/", "|", ",", "size", "select", "includes", "1", "42", "'s'", "@pre",
    "=>",
])


class TestParserFuzz:
    @given(st.lists(_TOKENS, max_size=12).map(" ".join))
    @settings(max_examples=400, deadline=None)
    def test_token_soup_parses_or_syntax_errors(self, source):
        try:
            parse(source)
        except OCLSyntaxError:
            pass

    @given(st.text(max_size=80))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_text(self, source):
        try:
            parse(source)
        except OCLSyntaxError:
            pass

    @given(st.lists(_TOKENS, max_size=12).map(" ".join))
    @settings(max_examples=200, deadline=None)
    def test_successful_parses_round_trip(self, source):
        try:
            node = parse(source)
        except OCLSyntaxError:
            return
        assert parse(to_text(node)) == node

    @given(st.lists(_TOKENS, max_size=10).map(" ".join))
    @settings(max_examples=200, deadline=None)
    def test_successful_parses_evaluate_without_internal_errors(self, source):
        from repro.errors import OCLError
        from repro.ocl import Context

        try:
            node = parse(source)
        except OCLSyntaxError:
            return
        context = Context({"project": {"volumes": [1]}, "volume": {},
                           "x": 3, "pre": 1, "size": 2, "select": 4,
                           "includes": 5}, strict=False)
        try:
            evaluate(node, context=context)
        except OCLError:
            pass  # documented evaluation/type errors are acceptable


_POLICY_TOKENS = st.sampled_from([
    "role:admin", "role:member", "group:g", "rule:r", "@", "!", "and",
    "or", "not", "(", ")", "user_id:%(user_id)s", "###", ":",
])


class TestPolicyRuleFuzz:
    @given(st.lists(_POLICY_TOKENS, max_size=10).map(" ".join))
    @settings(max_examples=300, deadline=None)
    def test_rule_soup_parses_or_policy_errors(self, source):
        try:
            rule = PolicyRule("r", source)
        except PolicyError:
            return
        # Parsed rules must also evaluate without internal errors
        # (rule:r references are unknown -> PolicyError is documented).
        try:
            rule.check({"roles": ["admin"], "groups": []})
        except PolicyError:
            pass

    @given(st.text(max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_policy_text(self, source):
        try:
            PolicyRule("r", source)
        except PolicyError:
            pass
