"""Tests for OCL if-then-else-endif expressions."""

import pytest

from repro.errors import OCLSyntaxError
from repro.ocl import Conditional, evaluate, parse, to_text


class TestParsing:
    def test_basic(self):
        node = parse("if a then 1 else 2 endif")
        assert isinstance(node, Conditional)

    def test_nested(self):
        node = parse("if a then if b then 1 else 2 endif else 3 endif")
        assert isinstance(node.then_branch, Conditional)

    def test_conditional_in_operand(self):
        node = parse("1 + if a then 1 else 2 endif")
        assert node.operator == "+"
        assert isinstance(node.right, Conditional)

    def test_branch_can_be_implication(self):
        node = parse("if a then b implies c else d endif")
        assert node.then_branch.operator == "implies"

    @pytest.mark.parametrize("source", [
        "if a then 1 endif",
        "if a then 1 else 2",
        "if a 1 else 2 endif",
        "if then 1 else 2 endif",
    ])
    def test_malformed(self, source):
        with pytest.raises(OCLSyntaxError):
            parse(source)

    def test_if_is_reserved(self):
        with pytest.raises(OCLSyntaxError):
            parse("x.if")


class TestEvaluation:
    def test_then_branch(self):
        assert evaluate("if true then 1 else 2 endif", {}) == 1

    def test_else_branch(self):
        assert evaluate("if false then 1 else 2 endif", {}) == 2

    def test_undefined_condition_takes_else(self):
        assert evaluate("if p.nope then 1 else 2 endif", {"p": {}}) == 2

    def test_lazy_branches(self):
        # The untaken branch must not be evaluated (1/0 is undefined, but
        # unbound names raise in strict mode).
        assert evaluate("if true then 1 else missing endif", {"x": 0}) == 1

    def test_quota_style_usage(self):
        expression = ("if project.volumes->size() < quota then 'ok' "
                      "else 'full' endif")
        assert evaluate(expression, {
            "project": {"volumes": [1]}, "quota": 5}) == "ok"
        assert evaluate(expression, {
            "project": {"volumes": [1, 2]}, "quota": 2}) == "full"


class TestPrinting:
    def test_round_trip(self):
        text = "if a > 1 then a else 1 endif"
        assert to_text(parse(text)) == text
        assert parse(to_text(parse(text))) == parse(text)

    def test_structural_equality(self):
        assert parse("if a then b else c endif") == \
            parse("if  a  then  b  else  c  endif")
        assert parse("if a then b else c endif") != \
            parse("if a then c else b endif")
