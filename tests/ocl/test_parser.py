"""Tests for the OCL parser."""

import pytest

from repro.errors import OCLSyntaxError
from repro.ocl import (
    ArrowCall,
    Binary,
    IteratorCall,
    Literal,
    MethodCall,
    Name,
    Navigation,
    Pre,
    Unary,
    parse,
    to_text,
)


class TestPrimaries:
    def test_int_literal(self):
        node = parse("42")
        assert isinstance(node, Literal)
        assert node.value == 42

    def test_real_literal(self):
        assert parse("2.5").value == 2.5

    def test_string_literal(self):
        assert parse("'in-use'").value == "in-use"

    def test_booleans_and_null(self):
        assert parse("true").value is True
        assert parse("false").value is False
        assert parse("null").value is None

    def test_name(self):
        node = parse("project")
        assert isinstance(node, Name)
        assert node.identifier == "project"

    def test_parenthesized(self):
        assert parse("(1)") == Literal(1)

    def test_parse_accepts_ast_passthrough(self):
        node = parse("a and b")
        assert parse(node) is node


class TestNavigationAndCalls:
    def test_dot_navigation(self):
        node = parse("project.volumes")
        assert isinstance(node, Navigation)
        assert node.attribute == "volumes"

    def test_chained_navigation(self):
        node = parse("user.id.groups")
        assert isinstance(node, Navigation)
        assert node.attribute == "groups"
        assert isinstance(node.source, Navigation)

    def test_arrow_call(self):
        node = parse("project.volumes->size()")
        assert isinstance(node, ArrowCall)
        assert node.operation == "size"
        assert node.arguments == ()

    def test_arrow_call_with_argument(self):
        node = parse("xs->includes(3)")
        assert node.arguments == (Literal(3),)

    def test_method_call(self):
        node = parse("x.oclIsUndefined()")
        assert isinstance(node, MethodCall)
        assert node.operation == "oclIsUndefined"

    def test_iterator_with_variable(self):
        node = parse("users->select(u | u.role = 'admin')")
        assert isinstance(node, IteratorCall)
        assert node.variable == "u"
        assert isinstance(node.body, Binary)

    def test_iterator_without_variable(self):
        node = parse("xs->exists(self = 1)")
        assert isinstance(node, IteratorCall)
        assert node.variable == "self"

    def test_pre_function_form(self):
        node = parse("pre(project.volumes->size())")
        assert isinstance(node, Pre)
        assert isinstance(node.operand, ArrowCall)

    def test_at_pre_form(self):
        node = parse("project.volumes->size()@pre")
        assert isinstance(node, Pre)

    def test_bare_pre_is_a_name(self):
        node = parse("pre")
        assert isinstance(node, Name)
        assert node.identifier == "pre"

    def test_pre_attribute_navigation(self):
        node = parse("pre.value")
        assert isinstance(node, Navigation)


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        node = parse("a or b and c")
        assert node.operator == "or"
        assert node.right.operator == "and"

    def test_or_binds_tighter_than_implies(self):
        node = parse("a or b implies c")
        assert node.operator == "implies"
        assert node.left.operator == "or"

    def test_implies_right_associative(self):
        node = parse("a implies b implies c")
        assert node.operator == "implies"
        assert isinstance(node.left, Name)
        assert node.right.operator == "implies"

    def test_comparison_binds_tighter_than_and(self):
        node = parse("x = 1 and y = 2")
        assert node.operator == "and"
        assert node.left.operator == "="

    def test_arithmetic_precedence(self):
        node = parse("1 + 2 * 3")
        assert node.operator == "+"
        assert node.right.operator == "*"

    def test_not_precedence(self):
        node = parse("not a and b")
        assert node.operator == "and"
        assert isinstance(node.left, Unary)

    def test_parens_override(self):
        node = parse("(a or b) and c")
        assert node.operator == "and"
        assert node.left.operator == "or"

    def test_double_arrow_alias(self):
        assert parse("a => b") == parse("a implies b")
        assert parse("a ==> b") == parse("a implies b")

    def test_unary_minus(self):
        node = parse("-x + 1")
        assert node.operator == "+"
        assert isinstance(node.left, Unary)


class TestStructuralEquality:
    def test_equal_parses(self):
        assert parse("a and b") == parse("a  and  b")

    def test_unequal_parses(self):
        assert parse("a and b") != parse("a or b")

    def test_hashable(self):
        assert len({parse("a"), parse("a"), parse("b")}) == 2

    def test_walk_yields_all_nodes(self):
        node = parse("a.b->size() = 1")
        names = [n.identifier for n in node.walk() if isinstance(n, Name)]
        assert names == ["a"]


class TestErrors:
    @pytest.mark.parametrize("source", [
        "",
        "and",
        "a and",
        "a ->",
        "a->size(",
        "(a",
        "a b",
        "a..b",
        "pre(",
        "f(a,)",
    ])
    def test_syntax_errors(self, source):
        with pytest.raises(OCLSyntaxError):
            parse(source)


class TestPaperExpressions:
    """Every OCL fragment that appears in the paper must parse."""

    INVARIANTS = [
        "project.id->size()=1 and project.volumes->size()=0",
        "project.id->size()=1 and project.volumes->size()>=1 and "
        "project.volumes < quota_sets.volume",
        "project.id->size()=1 and project.volumes->size()>=1 and "
        "project.volumes = quota_sets.volume",
    ]

    PRECONDITION = (
        "(project.id->size()=1 and project.volumes->size()>=1 and "
        "project.volumes < quota_sets.volume and volume.status <> 'in-use' "
        "and user.id.groups='admin') or "
        "(project.id->size()=1 and project.volumes->size()>=1 and "
        "project.volumes = quota_sets.volume and volume.status <> 'in-use' "
        "and user.id.groups= 'admin')"
    )

    POSTCONDITION = (
        "((project.id->size()=1 and project.volumes->size()>=1 and "
        "volume.status <> 'in-use' and user.id.groups= 'admin') "
        "=> project.id->size()=1 and project.volumes->size()>=0) and "
        "((project.id->size()=1) ==> project.volumes->size() < "
        "pre(project.volumes->size()))"
    )

    @pytest.mark.parametrize("source", INVARIANTS)
    def test_invariants_parse(self, source):
        node = parse(source)
        assert to_text(node)  # renders without error

    def test_precondition_parses(self):
        node = parse(self.PRECONDITION)
        assert node.operator == "or"

    def test_postcondition_parses_with_pre(self):
        node = parse(self.POSTCONDITION)
        pres = [n for n in node.walk() if isinstance(n, Pre)]
        assert len(pres) == 1
