"""Tests for OCL let expressions."""

import pytest

from repro.errors import OCLNameError, OCLSyntaxError
from repro.ocl import Let, evaluate, parse, simplify, to_text


class TestParsing:
    def test_basic(self):
        node = parse("let n = 3 in n + 1")
        assert isinstance(node, Let)
        assert node.variable == "n"

    def test_nested(self):
        node = parse("let a = 1 in let b = 2 in a + b")
        assert isinstance(node.body, Let)

    def test_let_in_then_branch(self):
        node = parse("if c then let n = 1 in n else 2 endif")
        assert isinstance(node.then_branch, Let)

    def test_let_value_can_be_complex(self):
        node = parse("let n = xs->select(v | v > 1)->size() in n = 2")
        assert node.variable == "n"

    @pytest.mark.parametrize("source", [
        "let = 1 in x",
        "let n 1 in x",
        "let n = 1 x",
        "let n = in x",
        "let n = 1 in",
    ])
    def test_malformed(self, source):
        with pytest.raises(OCLSyntaxError):
            parse(source)

    def test_let_is_reserved_as_name(self):
        with pytest.raises(OCLSyntaxError):
            parse("let.x")


class TestEvaluation:
    def test_binding_used_in_body(self):
        assert evaluate("let n = xs->size() in n * n", {"xs": [1, 2, 3]}) == 9

    def test_binding_shadows_outer(self):
        assert evaluate("let x = 2 in x + 1", {"x": 10}) == 3

    def test_binding_scoped_to_body(self):
        with pytest.raises(OCLNameError):
            evaluate("(let n = 1 in n) + n", {})

    def test_nested_lets(self):
        assert evaluate("let a = 2 in let b = a * 3 in a + b", {}) == 8

    def test_avoids_recomputation_semantics(self):
        # One binding, many uses: classic OCL readability pattern.
        expression = ("let count = project.volumes->size() in "
                      "count >= 1 and count < quota")
        bindings = {"project": {"volumes": [1, 2]}, "quota": 5}
        assert evaluate(expression, bindings) is True

    def test_iterator_variable_shadows_let(self):
        assert evaluate("let v = 100 in xs->collect(v | v)->sum()",
                        {"xs": [1, 2]}) == 3


class TestPrintingAndSimplify:
    def test_round_trip(self):
        text = "let n = xs->size() in n > 1"
        assert to_text(parse(text)) == text
        assert parse(to_text(parse(text))) == parse(text)

    def test_structural_equality(self):
        assert parse("let n = 1 in n") == parse("let  n = 1  in n")
        assert parse("let n = 1 in n") != parse("let m = 1 in m")

    def test_simplify_recurses_into_let(self):
        node = simplify("let n = (1 and true) in (n or false)")
        assert to_text(node) == "let n = 1 in n"

    def test_let_as_operand_parenthesized(self):
        text = to_text(parse("(let n = 1 in n) + 2"))
        assert parse(text) == parse("(let n = 1 in n) + 2")
