"""Property-based tests for OCL evaluation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ocl import Context, Evaluator, Snapshot, evaluate, parse, to_text
from repro.ocl.nodes import Binary, Literal, Name, Pre, Unary
from repro.ocl.values import UNDEFINED, as_collection, ocl_equal, unique

_bool_leaves = st.one_of(
    st.booleans().map(Literal),
    st.sampled_from(["p", "q", "r"]).map(Name),
)


def _bool_expressions(depth=3):
    if depth <= 0:
        return _bool_leaves
    sub = _bool_expressions(depth - 1)
    return st.one_of(
        _bool_leaves,
        st.tuples(st.sampled_from(["and", "or", "xor", "implies"]), sub, sub)
        .map(lambda t: Binary(t[0], t[1], t[2])),
        sub.map(lambda e: Unary("not", e)),
    )


_bindings = st.fixed_dictionaries({
    "p": st.booleans(), "q": st.booleans(), "r": st.booleans()})


class TestBooleanAlgebra:
    @given(_bool_expressions(), _bool_expressions(), _bindings)
    @settings(max_examples=150, deadline=None)
    def test_implies_equals_not_or(self, a, b, bindings):
        left = evaluate(Binary("implies", a, b), bindings)
        right = evaluate(Binary("or", Unary("not", a), b), bindings)
        assert left == right

    @given(_bool_expressions(), _bool_expressions(), _bindings)
    @settings(max_examples=150, deadline=None)
    def test_de_morgan(self, a, b, bindings):
        left = evaluate(Unary("not", Binary("and", a, b)), bindings)
        right = evaluate(
            Binary("or", Unary("not", a), Unary("not", b)), bindings)
        assert left == right

    @given(_bool_expressions(), _bindings)
    @settings(max_examples=150, deadline=None)
    def test_double_negation(self, a, bindings):
        assert evaluate(Unary("not", Unary("not", a)), bindings) == \
            evaluate(a, bindings)

    @given(_bool_expressions(), _bindings)
    @settings(max_examples=100, deadline=None)
    def test_round_trip_preserves_value(self, a, bindings):
        assert evaluate(parse(to_text(a)), bindings) == evaluate(a, bindings)

    @given(_bool_expressions(), _bindings)
    @settings(max_examples=100, deadline=None)
    def test_evaluation_deterministic(self, a, bindings):
        assert evaluate(a, bindings) == evaluate(a, bindings)


class TestCollectionLaws:
    @given(st.lists(st.integers(min_value=-5, max_value=5)))
    @settings(max_examples=100, deadline=None)
    def test_as_set_size_bounded(self, xs):
        assert evaluate("xs->asSet()->size()", {"xs": xs}) <= len(xs)

    @given(st.lists(st.integers(min_value=-5, max_value=5)))
    @settings(max_examples=100, deadline=None)
    def test_including_grows_by_one(self, xs):
        grown = evaluate("xs->including(99)->size()", {"xs": xs})
        assert grown == len(xs) + 1

    @given(st.lists(st.integers(min_value=-3, max_value=3)),
           st.integers(min_value=-3, max_value=3))
    @settings(max_examples=100, deadline=None)
    def test_excluding_then_excludes(self, xs, x):
        bindings = {"xs": xs, "x": x}
        assert evaluate("xs->excluding(x)->excludes(x)", bindings) is True

    @given(st.lists(st.integers(min_value=-3, max_value=3)),
           st.integers(min_value=-3, max_value=3))
    @settings(max_examples=100, deadline=None)
    def test_count_consistent_with_includes(self, xs, x):
        bindings = {"xs": xs, "x": x}
        count = evaluate("xs->count(x)", bindings)
        includes = evaluate("xs->includes(x)", bindings)
        assert (count > 0) == includes

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1))
    @settings(max_examples=100, deadline=None)
    def test_select_reject_partition(self, xs):
        bindings = {"xs": xs}
        selected = evaluate("xs->select(v | v > 4)->size()", bindings)
        rejected = evaluate("xs->reject(v | v > 4)->size()", bindings)
        assert selected + rejected == len(xs)

    @given(st.lists(st.integers(min_value=0, max_value=9)))
    @settings(max_examples=100, deadline=None)
    def test_for_all_is_not_exists_not(self, xs):
        bindings = {"xs": xs}
        for_all = evaluate("xs->forAll(v | v > 4)", bindings)
        not_exists = evaluate("not xs->exists(v | not (v > 4))", bindings)
        assert for_all == not_exists


class TestValueHelpers:
    @given(st.one_of(st.none(), st.integers(), st.text(max_size=5),
                     st.lists(st.integers(), max_size=5)))
    @settings(max_examples=100, deadline=None)
    def test_as_collection_idempotent_on_lists(self, value):
        once = as_collection(value)
        assert as_collection(once) == once

    @given(st.lists(st.integers(min_value=-3, max_value=3)))
    @settings(max_examples=100, deadline=None)
    def test_unique_preserves_membership(self, xs):
        deduped = unique(xs)
        assert len(deduped) <= len(xs)
        for item in xs:
            assert any(ocl_equal(item, other) for other in deduped)

    def test_undefined_is_falsy_and_empty(self):
        assert not UNDEFINED
        assert as_collection(UNDEFINED) == []


class TestSnapshotProperties:
    @given(st.integers(min_value=0, max_value=100),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_snapshot_freezes_old_value(self, before, after):
        expression = "pre(x) - x"
        snapshot = Snapshot().capture(expression, Context({"x": before}))
        result = Evaluator(Context({"x": after}), snapshot).evaluate(expression)
        assert result == before - after

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_unchanged_state_means_pre_equals_now(self, value):
        context = Context({"x": value})
        snapshot = Snapshot().capture("pre(x) = x", context)
        assert Evaluator(context, snapshot).evaluate("pre(x) = x") is True

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_capture_idempotent(self, value):
        context = Context({"x": value})
        snapshot = Snapshot()
        snapshot.capture("pre(x)", context)
        first = dict(snapshot.values)
        snapshot.capture("pre(x)", context)
        assert snapshot.values == first
