"""Tests for the static root-usage analysis driving probe planning."""

from repro.ocl import (
    free_names,
    old_value_roots,
    parse,
    post_state_roots,
    required_roots,
)

ROOTS = ("project", "volume", "quota_sets", "user")


class TestFreeNames:
    def test_bare_name(self):
        assert free_names("project") == {"project"}

    def test_navigation_chain_counts_only_the_base(self):
        assert free_names("project.volumes->size()") == {"project"}

    def test_literals_have_no_free_names(self):
        assert free_names("1 + 2 < 4 and true") == frozenset()

    def test_connectives_union_both_sides(self):
        names = free_names(
            "project.volumes->size() < quota_sets.volumes "
            "and user.roles->includes('proj_administrator')")
        assert names == {"project", "quota_sets", "user"}

    def test_let_binding_is_not_free(self):
        names = free_names("let n = project.volumes->size() in n < limit")
        assert names == {"project", "limit"}

    def test_iterator_variable_is_not_free(self):
        names = free_names(
            "project.volumes->select(v | v.size > quota_sets.volumes)"
            "->size() = 0")
        assert names == {"project", "quota_sets"}

    def test_shadowing_iterator_variable(self):
        # The outer `volume` root and the iterator variable `volume` are
        # different things; the bound occurrence must not leak out.
        names = free_names(
            "volume.status = 'ok' and "
            "vols->forAll(volume | volume.size > 0)")
        assert names == {"volume", "vols"}

    def test_accepts_parsed_ast(self):
        assert free_names(parse("volume.status <> 'in-use'")) == {"volume"}

    def test_method_call_arguments_are_walked(self):
        assert free_names("x->count(user.id) > 0") == {"x", "user"}


class TestRequiredRoots:
    def test_filters_to_known_roots(self):
        roots = required_roots("project.id->size()=1 and other.thing", ROOTS)
        assert roots == {"project"}

    def test_figure3_delete_guard(self):
        guard = ("volume.status <> 'in-use' and project.volumes->size() > 1 "
                 "and (user.roles->includes('proj_administrator'))")
        assert required_roots(guard, ROOTS) == {"volume", "project", "user"}

    def test_figure3_invariant(self):
        invariant = ("project.id->size()=1 and project.volumes->size()>=1 "
                     "and project.volumes->size() < quota_sets.volumes")
        assert required_roots(invariant, ROOTS) == {"project", "quota_sets"}


class TestPrePostSplit:
    # The generated post-conditions are `pre(case_pre) implies inv and
    # effect`: the antecedent reads the old state, the consequent the new.
    POST = ("pre(volume.status <> 'in-use' and "
            "user.roles->includes('proj_administrator')) implies "
            "project.volumes->size() = pre(project.volumes->size()) - 1")

    def test_old_value_roots(self):
        assert old_value_roots(self.POST, ROOTS) == \
            {"volume", "user", "project"}

    def test_post_state_roots_exclude_pre_only_roots(self):
        # `volume` and `user` appear only under pre(): the snapshot answers
        # them, so the post-probe can skip both.
        assert post_state_roots(self.POST, ROOTS) == {"project"}

    def test_at_pre_syntax_counts_as_old(self):
        expr = "project.volumes->size()@pre = project.volumes->size()"
        assert old_value_roots(expr, ROOTS) == {"project"}
        assert post_state_roots(expr, ROOTS) == {"project"}

    def test_expression_without_pre_has_no_old_roots(self):
        expr = "project.volumes->size() < quota_sets.volumes"
        assert old_value_roots(expr, ROOTS) == frozenset()
        assert post_state_roots(expr, ROOTS) == {"project", "quota_sets"}
