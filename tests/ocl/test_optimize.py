"""Tests for the optimizing compile pipeline: fold, DNF, cost ordering.

The gate is semantic: every rewrite must be invisible to the verdict.
The property suite pins interpreter == compiler == simplify-then-compile
(including mixed int/float literals), and restricts the DNF/cost-ordered
``compile_optimized`` property to total boolean expressions -- the shape
contract conditions have -- because reordering also reorders which
operand of a partial expression raises.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ocl import (
    Context,
    Evaluator,
    Snapshot,
    compile_bool,
    compile_expression,
    compile_optimized,
    compile_snapshot_plan,
    optimize_expression,
    parse,
    simplify,
    to_text,
)
from repro.ocl.compile import (
    DNF_TERM_LIMIT,
    binding_cost,
    order_by_cost,
    to_dnf,
)
from repro.ocl.nodes import Binary, Literal, Name, Navigation
from repro.ocl.values import ocl_equal

COSTS = {"project": 2, "volume": 2, "quota_sets": 1, "user": 1}

BINDINGS = {
    "project": {"volumes": [{"id": "v1", "status": "available"},
                            {"id": "v2", "status": "in-use"}],
                "n": 2},
    "quota_sets": {"volumes": 5},
    "user": {"roles": ["admin"], "n": 1},
    "x": 7,
}


def context():
    return Context(BINDINGS, strict=False)


class TestSimplifierFolds:
    """The satellite fixes: comparisons through ocl_equal, arithmetic."""

    @pytest.mark.parametrize("expression, value", [
        ("1 = 1.0", True),           # mixed int/float equal by value
        ("1.5 = 3 / 2", True),
        ("2 <> 2.0", False),
        ("true = 1", False),         # bools are not their int values
        ("false = 0", False),
        ("true = true", True),
        ("'a' <> 'b'", True),
        ("1 + 2 = 3", True),
        ("2 * 3.5 = 7.0", True),
        ("10 - 3 < 8", True),
    ])
    def test_comparison_folds_to_literal(self, expression, value):
        node = simplify(parse(expression))
        assert isinstance(node, Literal)
        assert node.value is value

    def test_arithmetic_folds_preserving_type(self):
        folded = simplify(parse("1 + 2.0"))
        assert isinstance(folded, Literal)
        assert folded.value == 3.0 and isinstance(folded.value, float)
        folded = simplify(parse("1 + 2"))
        assert folded.value == 3 and isinstance(folded.value, int)

    def test_string_concat_folds(self):
        folded = simplify(parse("'ab' + 'cd'"))
        assert isinstance(folded, Literal)
        assert folded.value == "abcd"

    def test_division_by_zero_stays_unfolded(self):
        node = simplify(parse("1 / 0"))
        assert isinstance(node, Binary) and node.operator == "/"

    def test_type_error_stays_unfolded(self):
        node = simplify(parse("'a' + 3"))
        assert isinstance(node, Binary) and node.operator == "+"


class TestDNF:
    def test_distributes_and_over_or(self):
        node = to_dnf("(a or b) and (c or d)")
        assert to_text(node) == ("a and c or a and d or "
                                 "b and c or b and d")

    def test_atom_is_its_own_dnf(self):
        node = to_dnf("project.volumes->size() < 5")
        assert to_text(node) == "project.volumes->size() < 5"

    def test_bails_out_past_term_limit(self):
        # 2 disjuncts per factor, 7 factors: 128 terms > DNF_TERM_LIMIT.
        source = " and ".join(f"(a{i} or b{i})" for i in range(7))
        assert 2 ** 7 > DNF_TERM_LIMIT
        node = to_dnf(source)
        assert to_text(node) == to_text(parse(source))

    def test_preserves_semantics(self):
        source = "(x > 3 or user.n = 1) and project.n = 2"
        assert compile_bool(to_dnf(source))(context()) \
            == compile_bool(source)(context()) is True


class TestCostOrdering:
    def test_binding_cost_sums_probe_costs(self):
        assert binding_cost("project.volumes->size()", COSTS) == 2
        assert binding_cost("user.roles->includes('admin')", COSTS) == 1
        assert binding_cost("project.n + user.n", COSTS) == 3
        assert binding_cost("1 + 2", COSTS) == 0

    def test_cheap_operand_moves_first(self):
        node = order_by_cost("project.n = 2 and user.n = 1", COSTS)
        assert to_text(node) == "user.n = 1 and project.n = 2"

    def test_sort_is_stable(self):
        source = "user.n = 1 and quota_sets.volumes = 5 and x > 3"
        node = order_by_cost(source, COSTS)
        # x (cost 0) first; the two cost-1 operands keep source order.
        assert to_text(node) == ("x > 3 and user.n = 1 and "
                                 "quota_sets.volumes = 5")

    def test_recurses_into_nested_chains(self):
        source = "(project.n = 2 or user.n = 1) and x > 3"
        node = order_by_cost(source, COSTS)
        assert to_text(node) == "x > 3 and (user.n = 1 or project.n = 2)"


class TestOptimizedCompile:
    def test_constant_precondition_folds_away(self):
        node = optimize_expression("1 + 2 = 3 or project.n = 99",
                                   costs=COSTS, dnf=True)
        assert isinstance(node, Literal) and node.value is True

    def test_matches_plain_compile_on_contract_shape(self):
        source = ("project.volumes->size() < quota_sets.volumes "
                  "and user.roles->includes('admin') "
                  "or user.roles->includes('operator')")
        plain = compile_bool(source)(context())
        optimized = compile_optimized(source, costs=COSTS,
                                      dnf=True)(context())
        assert plain == optimized is True


class TestSnapshotPlan:
    def test_plan_matches_interpreted_capture(self):
        post = ("pre(project.volumes->size()) - project.volumes->size()"
                " = 1 and pre(user.n) = user.n")
        interpreted = Snapshot().capture(post, context())
        compiled = Snapshot()
        for key, closure in compile_snapshot_plan(post):
            compiled.values[key] = closure(context())
        assert compiled.values == interpreted.values

    def test_plan_dedupes_structural_duplicates(self):
        post = "pre(user.n) = 1 and pre(user.n) < 2"
        plan = compile_snapshot_plan(post)
        assert len(plan) == 1


# -- property-based equivalence ------------------------------------------------

_numbers = st.one_of(
    st.integers(min_value=-9, max_value=9),
    st.floats(min_value=-8.0, max_value=8.0,
              allow_nan=False, allow_infinity=False),
)


def _arith(depth=3):
    """Arithmetic over mixed int/float literals; no division (totality)."""
    if depth <= 0:
        return _numbers.map(Literal)
    sub = _arith(depth - 1)
    return st.one_of(
        _numbers.map(Literal),
        st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
            lambda t: Binary(*t)),
    )


def _atoms():
    """Total boolean atoms: literal comparisons and bound navigations."""
    return st.one_of(
        st.booleans().map(Literal),
        st.tuples(st.sampled_from(["=", "<>", "<", ">", "<=", ">="]),
                  _arith(2), _arith(2)).map(lambda t: Binary(*t)),
        st.tuples(st.sampled_from(["project", "quota_sets", "user"]),
                  st.sampled_from(["n", "volumes"]),
                  st.integers(min_value=0, max_value=5)).map(
            lambda t: Binary("=", Navigation(Name(t[0]), t[1]),
                             Literal(t[2]))),
    )


def _booleans(depth=3):
    if depth <= 0:
        return _atoms()
    sub = _booleans(depth - 1)
    return st.one_of(
        _atoms(),
        st.tuples(st.sampled_from(["and", "or"]), sub, sub).map(
            lambda t: Binary(*t)),
    )


class TestPropertyEquivalence:
    @given(_arith())
    @settings(max_examples=200, deadline=None)
    def test_arithmetic_fold_parity(self, expression):
        """simplify folds literal arithmetic to the interpreter's value,
        preserving the int/float distinction."""
        interpreted = Evaluator(context()).evaluate(expression)
        folded = simplify(expression)
        assert isinstance(folded, Literal)
        assert ocl_equal(folded.value, interpreted)
        assert type(folded.value) is type(interpreted)

    @given(_booleans())
    @settings(max_examples=300, deadline=None)
    def test_interpreter_compiler_simplifier_agree(self, expression):
        """interpreter == compiler == simplify-then-compile on total
        boolean expressions."""
        ctx = context()
        interpreted = Evaluator(ctx).evaluate_bool(expression)
        compiled = compile_bool(expression)(ctx)
        simplified = compile_bool(simplify(expression))(ctx)
        assert interpreted == compiled == simplified

    @given(_booleans())
    @settings(max_examples=300, deadline=None)
    def test_optimized_compile_is_semantics_preserving(self, expression):
        """The full pipeline (fold + DNF + cost ordering) is invisible."""
        ctx = context()
        interpreted = Evaluator(ctx).evaluate_bool(expression)
        optimized = compile_optimized(expression, costs=COSTS,
                                      dnf=True)(ctx)
        assert interpreted == optimized

    @given(_booleans())
    @settings(max_examples=150, deadline=None)
    def test_optimize_is_idempotent_on_semantics(self, expression):
        """Optimizing an already-optimized AST changes nothing observable."""
        ctx = context()
        once = optimize_expression(expression, costs=COSTS, dnf=True)
        twice = optimize_expression(once, costs=COSTS, dnf=True)
        assert compile_bool(once)(ctx) == compile_bool(twice)(ctx)
