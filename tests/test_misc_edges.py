"""Edge-case sweep across modules: reprs, error hierarchy, small branches."""

import pytest

from repro import errors
from repro.core import (
    CloudMonitor,
    MethodContract,
    cinder_behavior_model,
    cinder_resource_model,
)
from repro.core.codegen import generate_urls
from repro.httpsim import Headers, Request, Response
from repro.ocl import Context, Snapshot, parse
from repro.ocl.values import UNDEFINED, require_number, unique
from repro.uml.dot import _wrap
from repro.validation import default_setup


class TestErrorHierarchy:
    def test_everything_is_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError)

    def test_ocl_syntax_error_carries_position(self):
        error = errors.OCLSyntaxError("bad", position=7, line=2)
        assert error.position == 7
        assert error.line == 2

    def test_catching_the_base_class(self):
        with pytest.raises(errors.ReproError):
            raise errors.QuotaExceeded("over")


class TestReprs:
    def test_monitor_repr_shows_mode(self):
        cloud, monitor = default_setup(enforcing=True)
        assert "enforcing" in repr(monitor)
        cloud, monitor = default_setup(enforcing=False)
        assert "audit" in repr(monitor)

    def test_request_response_reprs(self):
        assert "GET" in repr(Request("get", "http://h/p"))
        assert "409" in repr(Response(409))

    def test_headers_repr(self):
        assert "X-K" in repr(Headers({"X-K": "v"}))

    def test_contract_repr(self):
        from repro.core import ContractGenerator

        contract = ContractGenerator(cinder_behavior_model()).for_trigger(
            "DELETE(volume)")
        assert "DELETE(volume)" in repr(contract)
        assert "cases=3" in repr(contract)


class TestSnapshotStorageBranches:
    def capture(self, value):
        snapshot = Snapshot()
        snapshot.values[("k",)] = value
        return snapshot.storage_bytes

    def test_bool_none_undefined_are_one_byte(self):
        assert self.capture(True) == 1
        assert self.capture(None) == 1
        assert self.capture(UNDEFINED) == 1

    def test_numbers_eight_bytes(self):
        assert self.capture(42) == 8
        assert self.capture(2.5) == 8

    def test_strings_by_encoded_length(self):
        assert self.capture("abc") == 3

    def test_lists_by_slot(self):
        assert self.capture([1, 2, 3]) == 24
        assert self.capture([]) == 8

    def test_other_objects_default(self):
        assert self.capture(object()) == 8


class TestValueHelpers:
    def test_require_number_rejects_bool(self):
        with pytest.raises(TypeError):
            require_number(True, "op")

    def test_require_number_rejects_str(self):
        with pytest.raises(TypeError):
            require_number("3", "op")

    def test_unique_with_unhashable(self):
        assert unique([[1], [1], [2]]) == [[1], [2]]


class TestDotWrapping:
    def test_long_invariant_wrapped(self):
        text = " and ".join([f"part{i} = {i}" for i in range(8)])
        wrapped = _wrap(text, width=30)
        assert "\\n" in wrapped

    def test_short_label_unwrapped(self):
        assert "\\n" not in _wrap("x = 1")


class TestCodegenOptions:
    def test_custom_views_module_name(self):
        source = generate_urls(cinder_resource_model(),
                               cinder_behavior_model(),
                               views_module="handlers")
        assert "from . import handlers" in source
        assert "handlers.volume" in source

    def test_generated_project_missing_file_raises(self):
        from repro.core.codegen import generate_project

        project = generate_project("cm", cinder_resource_model(),
                                   cinder_behavior_model())
        with pytest.raises(KeyError):
            project["not/there.py"]


class TestContractEdgeCases:
    def test_empty_case_list_rejected(self):
        from repro.errors import GenerationError
        from repro.uml import Trigger

        with pytest.raises(GenerationError):
            MethodContract(Trigger("GET", "x"), [])

    def test_compile_idempotent(self):
        from repro.core import ContractGenerator

        contract = ContractGenerator(cinder_behavior_model()).for_trigger(
            "GET(volumes)")
        first = contract.compile()._compiled_pre
        second = contract.compile()._compiled_pre
        assert first is second

    def test_simplified_generator_contracts_equivalent(self):
        from repro.core import ContractGenerator

        plain = ContractGenerator(cinder_behavior_model(),
                                  cinder_resource_model())
        tidy = ContractGenerator(cinder_behavior_model(),
                                 cinder_resource_model(), simplify=True)
        state = Context({
            "project": {"id": "p", "volumes": [{"id": "v"}]},
            "quota_sets": {"volumes": 5},
            "volume": {"id": "v", "status": "available"},
            "user": {"roles": ["admin"]},
        }, strict=False)
        for trigger_text in ("DELETE(volume)", "POST(volumes)",
                             "GET(volumes)"):
            assert plain.for_trigger(trigger_text).check_pre(state) == \
                tidy.for_trigger(trigger_text).check_pre(state)


class TestMonitorMisc:
    def test_unknown_contract_raises_monitor_error(self):
        from repro.core.monitor import MonitoredOperation
        from repro.errors import MonitorError
        from repro.uml import Trigger

        cloud, monitor = default_setup()
        operation = MonitoredOperation(Trigger("PUT", "ghost"), "x", "y")
        with pytest.raises(MonitorError):
            monitor.monitor_request(operation, Request("PUT", "/x"))

    def test_verdict_repr(self):
        cloud, monitor = default_setup()
        tokens = cloud.paper_tokens()
        cloud.client(tokens["carol"]).get("http://cmonitor/cmonitor/volumes")
        assert "GET(volumes)" in repr(monitor.log[-1])
