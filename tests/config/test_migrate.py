"""Migration of legacy (v0, flat-keyword) documents to the v1 schema."""

import pytest

from repro.config import MonitorConfig, config_digest, migrate, needs_migration
from repro.errors import ConfigError

LEGACY = {
    "scenario": "cinder",
    "project_id": "myProject",
    "enforcing": False,
    "volume_quota": 9,
    "fanout": 2,
    "probe_cache": True,
    "shards": 4,
    "router_seed": 3,
    "resilient": True,
    "retry": {"seed": 11, "max_attempts": 3},
    "manual_clock": True,
}


class TestNeedsMigration:
    def test_v0_documents_need_migration(self):
        assert needs_migration(LEGACY)
        assert needs_migration({})

    def test_v1_documents_do_not(self):
        assert not needs_migration({"config_version": 1})
        assert not needs_migration(MonitorConfig().to_dict())


class TestLiftV0:
    def test_keys_land_in_their_sections(self):
        config = MonitorConfig.from_dict(migrate(LEGACY))
        assert config.scenario.name == "cinder"
        assert config.cloud.volume_quota == 9
        assert config.monitor.enforcing is False
        assert config.monitor.fanout == 2
        assert config.monitor.probe_cache is True
        assert config.fleet.shards == 4
        assert config.fleet.router_seed == 3
        assert config.resilience.enabled is True
        assert config.resilience.seed == 11
        assert config.observability.clock == "manual"

    def test_empty_legacy_document_is_all_defaults(self):
        assert MonitorConfig.from_dict(migrate({})) == MonitorConfig()

    def test_unknown_legacy_key_rejected(self):
        with pytest.raises(ConfigError):
            migrate({"scenario": "cinder", "enforce_mode": True})

    def test_passthrough_sections_survive(self):
        migrated = migrate({
            "scenario": "cinder",
            "alarms": [{"name": "page", "slo": "verdict-availability"}]})
        config = MonitorConfig.from_dict(migrated)
        assert config.alarms[0].name == "page"


class TestIdempotence:
    def test_migrating_twice_is_migrating_once(self):
        once = migrate(LEGACY)
        assert migrate(once) == once

    def test_current_documents_are_fixed_points_by_digest(self):
        config = MonitorConfig()
        migrated = MonitorConfig.from_dict(migrate(config.to_dict()))
        assert config_digest(migrated) == config_digest(config)

    def test_future_version_rejected(self):
        with pytest.raises(ConfigError):
            migrate({"config_version": 99})
