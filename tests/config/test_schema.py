"""The schema-versioned config document: strictness, canonical form,
round-trip losslessness, and validation."""

import json

import pytest

from repro.config import (
    CONFIG_VERSION,
    AlarmSpec,
    CloudSection,
    FleetSection,
    MonitorConfig,
    MonitorSection,
    SLOSpec,
    SinkSpec,
    WindowSpec,
    config_digest,
    dump,
    dumps,
    load,
    loads,
    parse_text,
)
from repro.errors import ConfigError


def sample_config():
    return MonitorConfig(
        cloud=CloudSection(volume_quota=7),
        monitor=MonitorSection(enforcing=False, fanout=2, probe_cache=True),
        fleet=FleetSection(shards=4, router_seed=3),
        slos=(SLOSpec(
            name="availability", objective=0.999,
            good={"kind": "counter", "name": "good_total"},
            total={"kind": "counter", "name": "all_total"}),),
        windows=(WindowSpec(label="fast", seconds=300.0, threshold=14.4),),
        alarms=(AlarmSpec(name="page", slo="availability",
                          critical_breaches=1),),
        sinks=(SinkSpec(kind="memory", name="buffer"),),
    )


class TestCanonicalForm:
    def test_to_dict_emits_every_section(self):
        data = MonitorConfig().to_dict()
        assert data["config_version"] == CONFIG_VERSION
        assert set(data) == {
            "config_version", "cloud", "scenario", "monitor",
            "observability", "resilience", "deadline", "admission",
            "degradation", "fleet", "slos", "windows", "alarms", "sinks"}

    def test_from_dict_inverts_to_dict(self):
        config = sample_config()
        assert MonitorConfig.from_dict(config.to_dict()) == config

    def test_partial_document_fills_defaults(self):
        config = MonitorConfig.from_dict({
            "config_version": 1, "monitor": {"enforcing": False}})
        assert config.monitor.enforcing is False
        assert config.monitor.probe_planning is True
        assert config.fleet.shards == 1

    def test_digest_is_stable_and_content_addressed(self):
        config = sample_config()
        assert config_digest(config) == config_digest(sample_config())
        other = MonitorConfig()
        assert config_digest(config) != config_digest(other)


class TestStrictParsing:
    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigError):
            MonitorConfig.from_dict({"config_version": 1, "monitors": {}})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            MonitorConfig.from_dict({
                "config_version": 1, "monitor": {"enforcig": True}})

    def test_missing_version_rejected(self):
        with pytest.raises(ConfigError):
            MonitorConfig.from_dict({"monitor": {}})

    def test_future_version_rejected(self):
        with pytest.raises(ConfigError):
            MonitorConfig.from_dict({"config_version": 2})

    def test_type_errors_are_config_errors(self):
        with pytest.raises(ConfigError):
            MonitorConfig.from_dict({
                "config_version": 1, "monitor": {"fanout": "two"}})
        with pytest.raises(ConfigError):
            MonitorConfig.from_dict({
                "config_version": 1, "monitor": {"enforcing": 1}})


class TestSerialisation:
    def test_json_round_trip(self):
        config = sample_config()
        assert loads(dumps(config, format="json")) == config

    def test_yaml_round_trip(self):
        config = sample_config()
        assert loads(dumps(config, format="yaml")) == config

    def test_parse_text_accepts_both(self):
        config = sample_config()
        assert MonitorConfig.from_dict(
            parse_text(dumps(config, format="json"))) == config
        assert MonitorConfig.from_dict(
            parse_text(dumps(config, format="yaml"))) == config

    def test_file_round_trip_by_extension(self, tmp_path):
        config = sample_config()
        for name in ("monitor.yaml", "monitor.json"):
            path = tmp_path / name
            dump(config, str(path))
            assert load(str(path)) == config


class TestValidation:
    def test_defaults_validate_clean(self):
        assert MonitorConfig().validate() == []
        assert sample_config().validate() == []

    def test_unknown_scenario_flagged(self):
        config = MonitorConfig.from_dict({
            "config_version": 1, "scenario": {"name": "swift"}})
        assert any("swift" in problem for problem in config.validate())

    def test_alarm_on_unknown_slo_flagged(self):
        config = MonitorConfig.from_dict({
            "config_version": 1,
            "alarms": [{"name": "page", "slo": "no-such-slo"}]})
        assert any("no-such-slo" in problem
                   for problem in config.validate())

    def test_jsonl_sink_requires_path(self):
        config = MonitorConfig.from_dict({
            "config_version": 1, "sinks": [{"kind": "jsonl"}]})
        assert config.validate() != []

    def test_bad_objective_flagged(self):
        config = MonitorConfig.from_dict({
            "config_version": 1,
            "slos": [{"name": "s", "objective": 1.5,
                      "good": {"kind": "counter", "name": "g"},
                      "total": {"kind": "counter", "name": "t"}}]})
        assert config.validate() != []

    def test_require_valid_raises(self):
        config = MonitorConfig.from_dict({
            "config_version": 1, "fleet": {"shards": 0}})
        with pytest.raises(ConfigError):
            config.require_valid()


class TestDigestDocument:
    def test_canonical_json_is_sorted_and_newline_terminated(self):
        from repro.config.schema import config_to_json

        text = config_to_json(MonitorConfig())
        assert text.endswith("\n")
        data = json.loads(text)
        assert list(data) == sorted(data)
