"""Hypothesis properties for the config document.

Two guarantees the digest gate relies on, pinned over generated
configs rather than hand-picked examples:

* losslessness -- ``loads(dumps(cfg)) == cfg`` in both formats, so the
  canonical digest is a true fingerprint of the deployment;
* migrate idempotence -- ``migrate(migrate(d)) == migrate(d)``, for
  both current documents and legacy flat (v0) ones.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    MonitorConfig,
    config_digest,
    dumps,
    loads,
    migrate,
)

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-", min_size=1, max_size=12)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
small_floats = st.floats(min_value=0.0, max_value=100.0,
                         allow_nan=False, allow_infinity=False)

selectors = st.fixed_dictionaries({
    "kind": st.sampled_from(["counter", "observations"]),
    "name": names,
})

slo_specs = st.fixed_dictionaries({
    "name": names,
    "objective": st.floats(min_value=0.5, max_value=0.9999,
                           allow_nan=False),
    "good": selectors,
    "total": selectors,
})

alarm_specs = st.fixed_dictionaries({
    "name": names,
    "slo": st.just("verdict-availability"),
    "warn_breaches": st.integers(min_value=1, max_value=2),
    "critical_breaches": st.sampled_from([0, 2]),
    "clear_after": st.integers(min_value=1, max_value=5),
})

documents = st.fixed_dictionaries({
    "config_version": st.just(1),
    "cloud": st.fixed_dictionaries({
        "volume_quota": st.integers(min_value=1, max_value=50),
        "release2": st.booleans(),
    }),
    "monitor": st.fixed_dictionaries({
        "enforcing": st.booleans(),
        "probe_planning": st.booleans(),
        "fanout": st.integers(min_value=1, max_value=4),
        "probe_cache": st.booleans(),
    }),
    "observability": st.fixed_dictionaries({
        "clock": st.sampled_from(["system", "manual"]),
        "start": small_floats,
        "tick": small_floats,
    }),
    "resilience": st.fixed_dictionaries({
        "enabled": st.booleans(),
        "max_attempts": st.integers(min_value=1, max_value=5),
        "seed": seeds,
    }),
    "fleet": st.fixed_dictionaries({
        "shards": st.integers(min_value=1, max_value=8),
        "router_seed": seeds,
    }),
    "slos": st.lists(slo_specs, max_size=2),
    "alarms": st.lists(alarm_specs, max_size=2, unique_by=lambda a:
                       a["name"]),
})

legacy_documents = st.fixed_dictionaries({}, optional={
    "scenario": st.sampled_from(["cinder", "nova", "keystone"]),
    "enforcing": st.booleans(),
    "probe_planning": st.booleans(),
    "fanout": st.integers(min_value=1, max_value=4),
    "probe_cache": st.booleans(),
    "shards": st.integers(min_value=1, max_value=8),
    "resilient": st.booleans(),
    "manual_clock": st.booleans(),
    "volume_quota": st.integers(min_value=1, max_value=50),
    "retry": st.fixed_dictionaries({"seed": seeds}),
})


@settings(max_examples=100, deadline=None)
@given(data=documents)
def test_round_trip_is_lossless_in_both_formats(data):
    config = MonitorConfig.from_dict(data)
    for format in ("json", "yaml"):
        again = loads(dumps(config, format=format))
        assert again == config
        assert config_digest(again) == config_digest(config)


@settings(max_examples=100, deadline=None)
@given(data=documents)
def test_from_dict_to_dict_is_a_fixed_point(data):
    config = MonitorConfig.from_dict(data)
    canonical = config.to_dict()
    assert MonitorConfig.from_dict(canonical).to_dict() == canonical


@settings(max_examples=100, deadline=None)
@given(data=documents)
def test_migrate_is_identity_on_current_documents(data):
    config = MonitorConfig.from_dict(data)
    assert migrate(config.to_dict()) == config.to_dict()


@settings(max_examples=100, deadline=None)
@given(data=legacy_documents)
def test_migrate_is_idempotent_on_legacy_documents(data):
    once = migrate(data)
    assert migrate(once) == once
    # and the lifted document is digest-stable through a dump/load cycle
    config = MonitorConfig.from_dict(once)
    assert config_digest(loads(dumps(config, format="yaml"))) \
        == config_digest(config)
