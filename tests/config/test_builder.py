"""Building deployments from config alone, byte-identical to the
legacy setup helpers.

The acceptance property for the config path: the same seeded workload
through a config-built monitor (and a config-built 4-shard fleet)
produces exactly the verdict rows the deprecated setup shims produce,
on a clean leg and under recoverable faults.  ``scripts/
check_fanout_parity.py`` pins the absolute bytes against the recorded
baseline; these tests pin the equivalence between the two APIs.
"""

import hashlib

import pytest

from repro.config import (
    MonitorConfig,
    build_alarm_rules,
    build_clock,
    build_from_config,
    build_selector,
    build_slos,
    monitor_options,
    resilience_options,
)
from repro.core import CloudMonitor, MonitorFleet
from repro.core.auditlog import verdict_to_json
from repro.errors import ConfigError
from repro.obs import ManualClock, Observability
from repro.httpsim import Request
from repro.obs.slo import BucketCount, CounterTotal, Linear, ObservationCount
from repro.validation.chaos import (
    CHAOS_HOSTS,
    fleet_setup,
    recoverable_program,
    resilient_setup,
)
from repro.workloads import WorkloadRunner, make_workload

COUNT, SEED = 16, 7


def chaos_config(shards=1):
    return MonitorConfig.from_dict({
        "config_version": 1,
        "monitor": {"enforcing": False},
        "observability": {"clock": "manual"},
        "resilience": {"enabled": True, "max_attempts": 3,
                       "base_delay": 0.05, "seed": 11},
        "fleet": {"shards": shards},
    })


def run_rows(cloud, deployment, faulted=False):
    if faulted:
        for host in CHAOS_HOSTS:
            cloud.network.inject_fault(host, recoverable_program())
    monitored = getattr(deployment, "shards", None) is None
    runner = (WorkloadRunner(cloud, deployment) if monitored
              else WorkloadRunner(cloud))
    runner.execute(make_workload(COUNT, seed=SEED), monitored=True)
    rows = [verdict_to_json(verdict) for verdict in deployment.log]
    deployment.close()
    return hashlib.sha256("\n".join(rows).encode()).hexdigest()


class TestDigestParityWithLegacyShims:
    @pytest.mark.parametrize("faulted", [False, True],
                             ids=["clean", "faulted"])
    def test_single_monitor_matches_resilient_setup(self, faulted):
        with pytest.warns(DeprecationWarning):
            legacy = run_rows(*resilient_setup(), faulted=faulted)
        config = run_rows(*build_from_config(chaos_config()),
                          faulted=faulted)
        assert config == legacy

    @pytest.mark.parametrize("faulted", [False, True],
                             ids=["clean", "faulted"])
    def test_fleet_matches_fleet_setup(self, faulted):
        with pytest.warns(DeprecationWarning):
            legacy = run_rows(*fleet_setup(shards=4), faulted=faulted)
        config = run_rows(*build_from_config(chaos_config(shards=4)),
                          faulted=faulted)
        assert config == legacy

    def test_fleet_and_single_agree(self):
        single = run_rows(*build_from_config(chaos_config()))
        fleet = run_rows(*build_from_config(chaos_config(shards=4)))
        assert fleet == single

    def test_default_setup_shim_warns_and_matches_config(self):
        from repro.validation import default_setup

        audit = MonitorConfig.from_dict({
            "config_version": 1, "monitor": {"enforcing": False},
            "observability": {"clock": "manual"}})
        with pytest.warns(DeprecationWarning, match="build_from_config"):
            legacy = run_rows(*default_setup(
                enforcing=False,
                observability=Observability(clock=ManualClock())))
        config = run_rows(*build_from_config(audit))
        assert config == legacy


class TestBuildPieces:
    def test_build_clock(self):
        assert build_clock(MonitorConfig()) is None
        config = MonitorConfig.from_dict({
            "config_version": 1,
            "observability": {"clock": "manual", "start": 5.0,
                              "tick": 0.25}})
        clock = build_clock(config)
        assert isinstance(clock, ManualClock)
        assert clock() == 5.0   # reads return, then advance by tick
        assert clock() == 5.25

    def test_resilience_options_only_when_enabled(self):
        assert resilience_options(MonitorConfig()) is None
        config = MonitorConfig.from_dict({
            "config_version": 1,
            "resilience": {"enabled": True, "seed": 11}})
        options = resilience_options(config)
        assert options is not None
        assert options.retry_policy().seed == 11

    def test_monitor_options_fold_resilience(self):
        config = MonitorConfig.from_dict({
            "config_version": 1,
            "monitor": {"fanout": 2, "probe_cache": True},
            "resilience": {"enabled": True}})
        options = monitor_options(config)
        assert options.fanout == 2
        assert options.probe_cache is True
        assert options.resilience is not None

    def test_build_selector_kinds(self):
        assert isinstance(build_selector(
            {"kind": "counter", "name": "n"}), CounterTotal)
        assert isinstance(build_selector(
            {"kind": "observations", "name": "n"}), ObservationCount)
        assert isinstance(build_selector(
            {"kind": "bucket", "name": "n", "le": 0.1}), BucketCount)
        linear = build_selector({"kind": "linear", "terms": [
            {"coef": 2.0, "selector": {"kind": "counter", "name": "n"}}]})
        assert isinstance(linear, Linear)

    def test_build_lists_default_to_none(self):
        config = MonitorConfig()
        assert build_slos(config) is None
        assert build_alarm_rules(config) is None


class TestBuildFromConfig:
    def test_returns_monitor_and_registers_it(self):
        cloud, monitor = build_from_config(MonitorConfig())
        assert isinstance(monitor, CloudMonitor)
        response = cloud.network.send(
            Request("GET", "http://cmonitor/-/health"))
        assert response.status_code in (200, 503)
        monitor.close()

    def test_register_false_skips_registration(self):
        cloud, monitor = build_from_config(MonitorConfig(), register=False)
        response = cloud.network.send(
            Request("GET", "http://cmonitor/-/health"))
        assert response.status_code == 502  # host never registered
        monitor.close()

    def test_shards_build_a_fleet(self):
        cloud, fleet = build_from_config(chaos_config(shards=4))
        assert isinstance(fleet, MonitorFleet)
        assert len(fleet.shards) == 4
        fleet.close()

    def test_fleet_rejects_external_observability(self):
        with pytest.raises(ConfigError):
            build_from_config(chaos_config(shards=4),
                              observability=Observability())

    def test_invalid_config_rejected(self):
        config = MonitorConfig.from_dict({
            "config_version": 1, "scenario": {"name": "swift"}})
        with pytest.raises(ConfigError):
            build_from_config(config)

    def test_custom_alarms_and_slos_applied(self):
        config = MonitorConfig.from_dict({
            "config_version": 1,
            "slos": [{"name": "availability", "objective": 0.99,
                      "good": {"kind": "counter",
                               "name": "monitor_requests_total"},
                      "total": {"kind": "counter",
                                "name": "monitor_requests_total"}}],
            "alarms": [{"name": "page", "slo": "availability"}],
            "sinks": [{"kind": "memory"}],
        })
        cloud, monitor = build_from_config(config)
        assert [slo.name for slo in monitor.slos.slos] == ["availability"]
        assert [rule.name for rule in monitor.alarms.rules] == ["page"]
        assert len(monitor.alarms.sinks) == 1
        monitor.close()

    def test_custom_alarms_against_default_catalog(self):
        config = MonitorConfig.from_dict({
            "config_version": 1,
            "alarms": [{"name": "page", "slo": "verdict-availability",
                        "critical_breaches": 2, "clear_after": 3}]})
        cloud, monitor = build_from_config(config)
        (rule,) = monitor.alarms.rules
        assert rule.name == "page"
        assert rule.clear_after == 3
        monitor.close()
