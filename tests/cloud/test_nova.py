"""Tests for the Nova compute-lite service."""

SERVERS = "http://nova/v3/myProject/servers"
VOLUMES = "http://cinder/v3/myProject/volumes"


def create_server(client, name="s"):
    return client.post(SERVERS, {"server": {"name": name}})


def create_volume(client, name="v"):
    return client.post(VOLUMES, {"volume": {"name": name}})


class TestServers:
    def test_create_and_list(self, member):
        response = create_server(member, "web")
        assert response.status_code == 202
        server = response.json()["server"]
        assert server["status"] == "ACTIVE"
        listing = member.get(SERVERS).json()["servers"]
        assert [s["name"] for s in listing] == ["web"]

    def test_user_cannot_create(self, user):
        assert create_server(user).status_code == 403

    def test_get_item(self, member):
        sid = create_server(member).json()["server"]["id"]
        assert member.get(f"{SERVERS}/{sid}").status_code == 200

    def test_get_missing(self, member):
        assert member.get(f"{SERVERS}/ghost").status_code == 404

    def test_delete_admin_only(self, admin, member):
        sid = create_server(member).json()["server"]["id"]
        assert member.delete(f"{SERVERS}/{sid}").status_code == 403
        assert admin.delete(f"{SERVERS}/{sid}").status_code == 204

    def test_no_token_401(self, cloud):
        assert cloud.client().get(SERVERS).status_code == 401

    def test_foreign_project_scope_403(self, cloud, admin):
        cloud.keystone.create_project("other", project_id="other")
        assert admin.get("http://nova/v3/other/servers").status_code == 403


class TestVolumeAttachments:
    def setup_pair(self, client):
        sid = create_server(client).json()["server"]["id"]
        vid = create_volume(client).json()["volume"]["id"]
        return sid, vid

    def attach(self, client, sid, vid):
        return client.post(f"{SERVERS}/{sid}/volume_attachments",
                           {"volumeAttachment": {"volumeId": vid}})

    def test_attach_drives_volume_in_use(self, member):
        sid, vid = self.setup_pair(member)
        response = self.attach(member, sid, vid)
        assert response.status_code == 202
        volume = member.get(f"{VOLUMES}/{vid}").json()["volume"]
        assert volume["status"] == "in-use"
        assert volume["attachments"] == [{"server_id": sid}]

    def test_attachments_listing(self, member):
        sid, vid = self.setup_pair(member)
        self.attach(member, sid, vid)
        listing = member.get(
            f"{SERVERS}/{sid}/volume_attachments").json()
        assert listing["volume_attachments"] == [vid]

    def test_attach_missing_volume(self, member):
        sid = create_server(member).json()["server"]["id"]
        assert self.attach(member, sid, "ghost").status_code == 404

    def test_attach_missing_server(self, member):
        vid = create_volume(member).json()["volume"]["id"]
        assert self.attach(member, "ghost", vid).status_code == 404

    def test_attach_requires_volume_id(self, member):
        sid = create_server(member).json()["server"]["id"]
        response = member.post(f"{SERVERS}/{sid}/volume_attachments",
                               {"volumeAttachment": {}})
        assert response.status_code == 400

    def test_attach_already_attached_volume(self, member):
        sid, vid = self.setup_pair(member)
        self.attach(member, sid, vid)
        other_sid = create_server(member).json()["server"]["id"]
        assert self.attach(member, other_sid, vid).status_code == 400

    def test_user_cannot_attach(self, member, user):
        sid, vid = self.setup_pair(member)
        assert self.attach(user, sid, vid).status_code == 403

    def test_detach_restores_available(self, member):
        sid, vid = self.setup_pair(member)
        self.attach(member, sid, vid)
        response = member.delete(
            f"{SERVERS}/{sid}/volume_attachments/{vid}")
        assert response.status_code == 204
        volume = member.get(f"{VOLUMES}/{vid}").json()["volume"]
        assert volume["status"] == "available"

    def test_detach_not_attached(self, member):
        sid, vid = self.setup_pair(member)
        response = member.delete(
            f"{SERVERS}/{sid}/volume_attachments/{vid}")
        assert response.status_code == 404

    def test_server_delete_detaches_volumes(self, admin, member):
        sid, vid = self.setup_pair(member)
        self.attach(member, sid, vid)
        assert admin.delete(f"{SERVERS}/{sid}").status_code == 204
        volume = member.get(f"{VOLUMES}/{vid}").json()["volume"]
        assert volume["status"] == "available"
