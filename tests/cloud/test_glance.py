"""Tests for the Glance-lite image service and bootable volumes."""

import pytest

IMAGES = "http://glance/v2/images"
VOLUMES = "http://cinder/v3/myProject/volumes"


def register_image(client, name="img", min_disk=1):
    return client.post(IMAGES, {"name": name, "min_disk": min_disk})


def upload(client, image_id):
    return client.put(f"{IMAGES}/{image_id}/file", {})


def activate_image(client, name="img", min_disk=1):
    image_id = register_image(client, name, min_disk).json()["id"]
    upload(client, image_id)
    return image_id


class TestImageLifecycle:
    def test_register_is_queued(self, member):
        response = register_image(member)
        assert response.status_code == 201
        assert response.json()["status"] == "queued"

    def test_upload_activates(self, member):
        image_id = register_image(member).json()["id"]
        assert upload(member, image_id).status_code == 204
        image = member.get(f"{IMAGES}/{image_id}").json()
        assert image["status"] == "active"

    def test_double_upload_conflicts(self, member):
        image_id = register_image(member).json()["id"]
        upload(member, image_id)
        assert upload(member, image_id).status_code == 409

    def test_list_and_get(self, member, user):
        image_id = activate_image(member, name="ubuntu")
        listing = user.get(IMAGES).json()["images"]
        assert [image["name"] for image in listing] == ["ubuntu"]
        assert user.get(f"{IMAGES}/{image_id}").status_code == 200

    def test_get_missing(self, member):
        assert member.get(f"{IMAGES}/ghost").status_code == 404

    def test_upload_missing(self, member):
        assert upload(member, "ghost").status_code == 404

    def test_delete(self, admin, member):
        image_id = register_image(member).json()["id"]
        assert admin.delete(f"{IMAGES}/{image_id}").status_code == 204
        assert member.get(f"{IMAGES}/{image_id}").status_code == 404

    def test_bad_min_disk(self, member):
        assert member.post(IMAGES, {"min_disk": -1}).status_code == 400


class TestImageAuthorization:
    def test_user_cannot_register(self, user):
        assert register_image(user).status_code == 403

    def test_user_cannot_upload(self, member, user):
        image_id = register_image(member).json()["id"]
        assert upload(user, image_id).status_code == 403

    def test_member_cannot_delete(self, member):
        image_id = register_image(member).json()["id"]
        assert member.delete(f"{IMAGES}/{image_id}").status_code == 403

    def test_no_token_401(self, cloud):
        assert cloud.client().get(IMAGES).status_code == 401


class TestBootableVolumes:
    def test_volume_from_active_image(self, member):
        image_id = activate_image(member, min_disk=2)
        response = member.post(VOLUMES, {"volume": {"size": 3,
                                                    "imageRef": image_id}})
        assert response.status_code == 202
        volume = response.json()["volume"]
        assert volume["bootable"] is True

    def test_plain_volume_not_bootable(self, member):
        response = member.post(VOLUMES, {"volume": {"size": 1}})
        assert response.json()["volume"]["bootable"] is False

    def test_queued_image_rejected(self, member):
        image_id = register_image(member).json()["id"]  # never uploaded
        response = member.post(VOLUMES, {"volume": {"size": 2,
                                                    "imageRef": image_id}})
        assert response.status_code == 400
        assert "active" in response.json()["error"]["message"]

    def test_missing_image_rejected(self, member):
        response = member.post(VOLUMES, {"volume": {"size": 2,
                                                    "imageRef": "ghost"}})
        assert response.status_code == 400

    def test_min_disk_enforced(self, member):
        image_id = activate_image(member, min_disk=5)
        response = member.post(VOLUMES, {"volume": {"size": 2,
                                                    "imageRef": image_id}})
        assert response.status_code == 400
        assert "min_disk" in response.json()["error"]["message"]

    def test_min_disk_boundary(self, member):
        image_id = activate_image(member, min_disk=2)
        response = member.post(VOLUMES, {"volume": {"size": 2,
                                                    "imageRef": image_id}})
        assert response.status_code == 202

    def test_quota_still_applies(self, cloud, member):
        cloud.cinder.set_quota("myProject", 0)
        image_id = activate_image(member)
        response = member.post(VOLUMES, {"volume": {"size": 1,
                                                    "imageRef": image_id}})
        assert response.status_code == 413
