"""Tests for the mutation operators (Section VI-D)."""

import pytest

from repro.cloud import (
    PolicyMutant,
    QuotaBypassMutant,
    StatusCheckBypassMutant,
    StatusCodeMutant,
    extended_mutants,
    paper_mutants,
)
from repro.errors import ValidationError

VOLUMES = "http://cinder/v3/myProject/volumes"


def create_volume(client):
    return client.post(VOLUMES, {"volume": {"name": "v"}})


class TestPaperMutants:
    def test_three_mutants(self):
        mutants = paper_mutants()
        assert [m.mutant_id for m in mutants] == ["M1", "M2", "M3"]
        assert all(m.category == "authorization" for m in mutants)

    def test_m1_privilege_escalation(self, cloud, admin, member):
        vid = create_volume(admin).json()["volume"]["id"]
        mutant = paper_mutants()[0]
        assert member.delete(f"{VOLUMES}/{vid}").status_code == 403
        mutant.apply(cloud)
        assert member.delete(f"{VOLUMES}/{vid}").status_code == 204
        mutant.revert(cloud)
        vid2 = create_volume(admin).json()["volume"]["id"]
        assert member.delete(f"{VOLUMES}/{vid2}").status_code == 403

    def test_m2_missing_check(self, cloud, user):
        mutant = paper_mutants()[1]
        assert create_volume(user).status_code == 403
        mutant.apply(cloud)
        assert create_volume(user).status_code == 202
        mutant.revert(cloud)
        assert create_volume(user).status_code == 403

    def test_m3_privilege_loss(self, cloud, admin, member, user):
        mutant = paper_mutants()[2]
        mutant.apply(cloud)
        assert admin.get(VOLUMES).status_code == 200
        assert member.get(VOLUMES).status_code == 403
        assert user.get(VOLUMES).status_code == 403
        mutant.revert(cloud)
        assert user.get(VOLUMES).status_code == 200


class TestFunctionalMutants:
    def test_quota_bypass(self, cloud, member):
        cloud.cinder.set_quota("myProject", 0)
        mutant = QuotaBypassMutant()
        assert create_volume(member).status_code == 413
        mutant.apply(cloud)
        assert create_volume(member).status_code == 202
        mutant.revert(cloud)
        assert create_volume(member).status_code == 413

    def test_status_check_bypass(self, cloud, admin, member):
        vid = create_volume(member).json()["volume"]["id"]
        member.post(f"{VOLUMES}/{vid}/action",
                    {"os-attach": {"server_id": "s1"}})
        mutant = StatusCheckBypassMutant()
        assert admin.delete(f"{VOLUMES}/{vid}").status_code == 400
        mutant.apply(cloud)
        assert admin.delete(f"{VOLUMES}/{vid}").status_code == 204
        mutant.revert(cloud)

    def test_status_code_mutant(self, cloud, admin, member):
        vid = create_volume(member).json()["volume"]["id"]
        mutant = StatusCodeMutant()
        mutant.apply(cloud)
        assert admin.delete(f"{VOLUMES}/{vid}").status_code == 200
        mutant.revert(cloud)
        vid2 = create_volume(member).json()["volume"]["id"]
        assert admin.delete(f"{VOLUMES}/{vid2}").status_code == 204


class TestMutantDiscipline:
    def test_double_apply_rejected(self, cloud):
        mutant = paper_mutants()[0]
        mutant.apply(cloud)
        with pytest.raises(ValidationError):
            mutant.apply(cloud)

    def test_revert_before_apply_rejected(self, cloud):
        with pytest.raises(ValidationError):
            paper_mutants()[0].revert(cloud)

    def test_apply_revert_apply_cycle(self, cloud):
        mutant = paper_mutants()[0]
        mutant.apply(cloud)
        mutant.revert(cloud)
        mutant.apply(cloud)
        mutant.revert(cloud)

    def test_policy_mutant_on_missing_action_reverts_cleanly(self, cloud):
        mutant = PolicyMutant("MX", "adds a brand-new action",
                              "volume:brandnew", "@")
        mutant.apply(cloud)
        assert "volume:brandnew" in cloud.cinder.policy.rules
        mutant.revert(cloud)
        assert "volume:brandnew" not in cloud.cinder.policy.rules

    def test_extended_set_is_superset(self):
        extended = extended_mutants()
        assert [m.mutant_id for m in extended] == [
            "M1", "M2", "M3", "M4", "M5", "M6"]
        categories = {m.mutant_id: m.category for m in extended}
        assert categories["M4"] == "functional"
