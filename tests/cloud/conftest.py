"""Shared fixtures: the paper's myProject cloud with three users."""

import pytest

from repro.cloud import PrivateCloud


@pytest.fixture()
def cloud():
    """The Section VI-D setup: myProject, quota 5, alice/bob/carol."""
    return PrivateCloud.paper_setup()


@pytest.fixture()
def tokens(cloud):
    return cloud.paper_tokens()


@pytest.fixture()
def admin(cloud, tokens):
    """alice: role admin via group proj_administrator."""
    return cloud.client(tokens["alice"])


@pytest.fixture()
def member(cloud, tokens):
    """bob: role member via group service_architect."""
    return cloud.client(tokens["bob"])


@pytest.fixture()
def user(cloud, tokens):
    """carol: role user via group business_analyst."""
    return cloud.client(tokens["carol"])
