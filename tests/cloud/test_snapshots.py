"""Unit tests for the release-2 snapshot feature of the Cinder simulator."""

import pytest

from repro.cloud import PrivateCloud

VOLUMES = "http://cinder/v3/myProject/volumes"
SNAPSHOTS = "http://cinder/v3/myProject/snapshots"


@pytest.fixture()
def cloud():
    return PrivateCloud.paper_setup(release2=True)


@pytest.fixture()
def clients(cloud):
    tokens = cloud.paper_tokens()
    return {name: cloud.client(token) for name, token in tokens.items()}


def create_volume(client):
    return client.post(VOLUMES, {"volume": {"name": "v"}})


def create_snapshot(client, volume_id, name="s"):
    return client.post(SNAPSHOTS,
                       {"snapshot": {"volume_id": volume_id, "name": name}})


class TestFeatureSwitch:
    def test_disabled_by_default(self):
        cloud = PrivateCloud.paper_setup()
        token = cloud.paper_tokens()["bob"]
        client = cloud.client(token)
        assert client.get(SNAPSHOTS).status_code == 404
        assert client.post(SNAPSHOTS, {"snapshot": {}}).status_code == 404
        assert client.get(f"{SNAPSHOTS}/any").status_code == 404

    def test_enabled_in_release2(self, clients):
        assert clients["bob"].get(SNAPSHOTS).status_code == 200


class TestSnapshotCrud:
    def test_create_and_get(self, clients):
        vid = create_volume(clients["bob"]).json()["volume"]["id"]
        response = create_snapshot(clients["bob"], vid, name="backup")
        assert response.status_code == 202
        snapshot = response.json()["snapshot"]
        assert snapshot["volume_id"] == vid
        assert snapshot["status"] == "available"
        fetched = clients["carol"].get(f"{SNAPSHOTS}/{snapshot['id']}")
        assert fetched.status_code == 200
        assert fetched.json()["snapshot"]["name"] == "backup"

    def test_list_with_volume_filter(self, clients):
        vid_a = create_volume(clients["bob"]).json()["volume"]["id"]
        vid_b = create_volume(clients["bob"]).json()["volume"]["id"]
        create_snapshot(clients["bob"], vid_a)
        create_snapshot(clients["bob"], vid_b)
        create_snapshot(clients["bob"], vid_b)
        all_rows = clients["bob"].get(SNAPSHOTS).json()["snapshots"]
        assert len(all_rows) == 3
        filtered = clients["bob"].get(
            SNAPSHOTS, params={"volume_id": vid_b}).json()["snapshots"]
        assert len(filtered) == 2

    def test_create_for_missing_volume(self, clients):
        assert create_snapshot(clients["bob"], "ghost").status_code == 404

    def test_create_requires_volume_id(self, clients):
        assert clients["bob"].post(
            SNAPSHOTS, {"snapshot": {}}).status_code == 404

    def test_delete(self, clients):
        vid = create_volume(clients["bob"]).json()["volume"]["id"]
        sid = create_snapshot(clients["bob"], vid).json()["snapshot"]["id"]
        assert clients["alice"].delete(f"{SNAPSHOTS}/{sid}").status_code == 204
        assert clients["bob"].get(f"{SNAPSHOTS}/{sid}").status_code == 404

    def test_get_missing(self, clients):
        assert clients["bob"].get(f"{SNAPSHOTS}/ghost").status_code == 404


class TestSnapshotAuthorization:
    def test_user_cannot_create(self, clients):
        vid = create_volume(clients["bob"]).json()["volume"]["id"]
        assert create_snapshot(clients["carol"], vid).status_code == 403

    def test_all_roles_can_read(self, clients):
        for name in ("alice", "bob", "carol"):
            assert clients[name].get(SNAPSHOTS).status_code == 200

    def test_only_admin_deletes(self, clients):
        vid = create_volume(clients["bob"]).json()["volume"]["id"]
        sid = create_snapshot(clients["bob"], vid).json()["snapshot"]["id"]
        assert clients["bob"].delete(f"{SNAPSHOTS}/{sid}").status_code == 403
        assert clients["carol"].delete(f"{SNAPSHOTS}/{sid}").status_code == 403
        assert clients["alice"].delete(f"{SNAPSHOTS}/{sid}").status_code == 204

    def test_no_token_401(self, cloud):
        assert cloud.client().get(SNAPSHOTS).status_code == 401


class TestVolumeDeletionRule:
    def test_snapshotted_volume_undeletable(self, cloud, clients):
        vid = create_volume(clients["bob"]).json()["volume"]["id"]
        create_snapshot(clients["bob"], vid)
        assert clients["alice"].delete(f"{VOLUMES}/{vid}").status_code == 400
        assert cloud.cinder.volumes.get(vid) is not None

    def test_deletable_after_snapshots_removed(self, cloud, clients):
        vid = create_volume(clients["bob"]).json()["volume"]["id"]
        sid = create_snapshot(clients["bob"], vid).json()["snapshot"]["id"]
        clients["alice"].delete(f"{SNAPSHOTS}/{sid}")
        assert clients["alice"].delete(f"{VOLUMES}/{vid}").status_code == 204

    def test_bypass_switch(self, cloud, clients):
        vid = create_volume(clients["bob"]).json()["volume"]["id"]
        create_snapshot(clients["bob"], vid)
        cloud.cinder.enforce_snapshot_check = False
        assert clients["alice"].delete(f"{VOLUMES}/{vid}").status_code == 204

    def test_rule_inactive_on_release1(self):
        # Without the feature there are no snapshots to block deletion.
        cloud = PrivateCloud.paper_setup()
        tokens = cloud.paper_tokens()
        bob = cloud.client(tokens["bob"])
        alice = cloud.client(tokens["alice"])
        vid = create_volume(bob).json()["volume"]["id"]
        assert alice.delete(f"{VOLUMES}/{vid}").status_code == 204

    def test_snapshot_count_helper(self, cloud, clients):
        vid = create_volume(clients["bob"]).json()["volume"]["id"]
        assert cloud.cinder.snapshot_count(vid) == 0
        create_snapshot(clients["bob"], vid)
        create_snapshot(clients["bob"], vid)
        assert cloud.cinder.snapshot_count(vid) == 2
