"""Tests for the Cinder block-storage service."""


VOLUMES = "http://cinder/v3/myProject/volumes"
QUOTA = "http://cinder/v3/myProject/quota_sets"


def create_volume(client, name="v", size=1):
    return client.post(VOLUMES, {"volume": {"name": name, "size": size}})


class TestAuthorizationMatrix:
    """The Table-I matrix enforced by the real service."""

    def test_get_allowed_for_all_roles(self, admin, member, user):
        for client in (admin, member, user):
            assert client.get(VOLUMES).status_code == 200

    def test_post_allowed_admin_member_only(self, admin, member, user):
        assert create_volume(admin).status_code == 202
        assert create_volume(member).status_code == 202
        assert create_volume(user).status_code == 403

    def test_put_allowed_admin_member_only(self, admin, member, user):
        vid = create_volume(admin).json()["volume"]["id"]
        url = f"{VOLUMES}/{vid}"
        assert admin.put(url, {"volume": {"name": "a"}}).status_code == 200
        assert member.put(url, {"volume": {"name": "b"}}).status_code == 200
        assert user.put(url, {"volume": {"name": "c"}}).status_code == 403

    def test_delete_admin_only(self, admin, member, user):
        vid = create_volume(admin).json()["volume"]["id"]
        url = f"{VOLUMES}/{vid}"
        assert user.delete(url).status_code == 403
        assert member.delete(url).status_code == 403
        assert admin.delete(url).status_code == 204

    def test_no_token_is_401(self, cloud):
        assert cloud.client().get(VOLUMES).status_code == 401

    def test_foreign_project_scope_is_403(self, cloud, admin):
        cloud.keystone.create_project("other", project_id="other")
        response = admin.get("http://cinder/v3/other/volumes")
        assert response.status_code == 403


class TestVolumeLifecycle:
    def test_create_defaults(self, member):
        response = create_volume(member, name="data")
        volume = response.json()["volume"]
        assert volume["status"] == "available"
        assert volume["size"] == 1
        assert volume["attachments"] == []
        assert volume["project_id"] == "myProject"

    def test_create_bad_size(self, member):
        response = member.post(VOLUMES, {"volume": {"size": -3}})
        assert response.status_code == 400
        response = member.post(VOLUMES, {"volume": {"size": "big"}})
        assert response.status_code == 400

    def test_list_scoped_to_project(self, cloud, admin, member):
        create_volume(member)
        cloud.keystone.create_project("other", project_id="other")
        cloud.keystone.rbac.assign("admin", "other",
                                   group="proj_administrator")
        other_token = cloud.keystone.issue_token(
            "alice", "alice-secret", "other")
        other_client = cloud.client(other_token)
        assert other_client.get(
            "http://cinder/v3/other/volumes").json()["volumes"] == []

    def test_get_item(self, member):
        vid = create_volume(member, name="x").json()["volume"]["id"]
        response = member.get(f"{VOLUMES}/{vid}")
        assert response.status_code == 200
        assert response.json()["volume"]["name"] == "x"

    def test_get_missing_item(self, member):
        assert member.get(f"{VOLUMES}/ghost").status_code == 404

    def test_get_item_from_other_project_hidden(self, cloud, admin, member):
        vid = create_volume(member).json()["volume"]["id"]
        cloud.keystone.create_project("other", project_id="other")
        cloud.keystone.rbac.assign("admin", "other",
                                   group="proj_administrator")
        token = cloud.keystone.issue_token("alice", "alice-secret", "other")
        response = cloud.client(token).get(
            f"http://cinder/v3/other/volumes/{vid}")
        assert response.status_code == 404

    def test_update_name_description(self, member):
        vid = create_volume(member).json()["volume"]["id"]
        response = member.put(f"{VOLUMES}/{vid}", {
            "volume": {"name": "renamed", "description": "d"}})
        volume = response.json()["volume"]
        assert volume["name"] == "renamed"
        assert volume["description"] == "d"

    def test_update_nothing_is_400(self, member):
        vid = create_volume(member).json()["volume"]["id"]
        assert member.put(f"{VOLUMES}/{vid}",
                          {"volume": {"status": "hacked"}}).status_code == 400

    def test_update_cannot_change_status(self, member):
        vid = create_volume(member).json()["volume"]["id"]
        member.put(f"{VOLUMES}/{vid}",
                   {"volume": {"name": "n", "status": "in-use"}})
        assert member.get(
            f"{VOLUMES}/{vid}").json()["volume"]["status"] == "available"

    def test_delete_returns_204_and_removes(self, admin, member):
        vid = create_volume(member).json()["volume"]["id"]
        assert admin.delete(f"{VOLUMES}/{vid}").status_code == 204
        assert admin.get(f"{VOLUMES}/{vid}").status_code == 404

    def test_delete_missing_is_404(self, admin):
        assert admin.delete(f"{VOLUMES}/ghost").status_code == 404


class TestQuota:
    def test_quota_enforced(self, cloud, member):
        cloud.cinder.set_quota("myProject", 2)
        assert create_volume(member).status_code == 202
        assert create_volume(member).status_code == 202
        assert create_volume(member).status_code == 413

    def test_quota_frees_on_delete(self, cloud, admin, member):
        cloud.cinder.set_quota("myProject", 1)
        vid = create_volume(member).json()["volume"]["id"]
        assert create_volume(member).status_code == 413
        admin.delete(f"{VOLUMES}/{vid}")
        assert create_volume(member).status_code == 202

    def test_quota_view(self, cloud, member):
        create_volume(member)
        response = member.get(QUOTA)
        quota = response.json()["quota_set"]
        assert quota["volumes"] == 5
        assert quota["in_use"]["volumes"] == 1

    def test_quota_update_admin_only(self, admin, member):
        assert member.put(QUOTA, {"quota_set": {"volumes": 9}}).status_code == 403
        response = admin.put(QUOTA, {"quota_set": {"volumes": 9}})
        assert response.status_code == 200
        assert response.json()["quota_set"]["volumes"] == 9

    def test_quota_update_validation(self, admin):
        assert admin.put(QUOTA, {"quota_set": {"volumes": -1}}).status_code == 400
        assert admin.put(QUOTA, {"quota_set": {}}).status_code == 400

    def test_quota_bypass_switch(self, cloud, member):
        cloud.cinder.set_quota("myProject", 0)
        assert create_volume(member).status_code == 413
        cloud.cinder.enforce_quota = False
        assert create_volume(member).status_code == 202


class TestAttachmentActions:
    def attach(self, client, vid, server_id="srv-1"):
        return client.post(f"{VOLUMES}/{vid}/action",
                           {"os-attach": {"server_id": server_id}})

    def test_attach_makes_in_use(self, member):
        vid = create_volume(member).json()["volume"]["id"]
        response = self.attach(member, vid)
        assert response.status_code == 202
        assert response.json()["volume"]["status"] == "in-use"

    def test_double_attach_rejected(self, member):
        vid = create_volume(member).json()["volume"]["id"]
        self.attach(member, vid)
        assert self.attach(member, vid).status_code == 400

    def test_detach(self, member):
        vid = create_volume(member).json()["volume"]["id"]
        self.attach(member, vid)
        response = member.post(f"{VOLUMES}/{vid}/action", {"os-detach": {}})
        assert response.status_code == 202
        assert response.json()["volume"]["status"] == "available"

    def test_detach_unattached_rejected(self, member):
        vid = create_volume(member).json()["volume"]["id"]
        assert member.post(f"{VOLUMES}/{vid}/action",
                           {"os-detach": {}}).status_code == 400

    def test_unknown_action(self, member):
        vid = create_volume(member).json()["volume"]["id"]
        assert member.post(f"{VOLUMES}/{vid}/action",
                           {"os-resize": {}}).status_code == 400

    def test_action_user_denied(self, member, user):
        vid = create_volume(member).json()["volume"]["id"]
        assert self.attach(user, vid).status_code == 403

    def test_delete_in_use_volume_rejected(self, admin, member):
        # The functional rule of the behavioral model: DELETE is ignored
        # while the volume is attached (paper Section II).
        vid = create_volume(member).json()["volume"]["id"]
        self.attach(member, vid)
        assert admin.delete(f"{VOLUMES}/{vid}").status_code == 400

    def test_status_check_bypass_switch(self, cloud, admin, member):
        vid = create_volume(member).json()["volume"]["id"]
        self.attach(member, vid)
        cloud.cinder.enforce_status_check = False
        assert admin.delete(f"{VOLUMES}/{vid}").status_code == 204
