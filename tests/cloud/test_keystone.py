"""Tests for the Keystone identity service."""

import pytest

from repro.errors import CloudError


def auth_payload(user_id, password, project_id):
    return {
        "auth": {
            "identity": {"password": {"user": {
                "id": user_id, "password": password}}},
            "scope": {"project": {"id": project_id}},
        }
    }


class TestTokenLifecycle:
    def test_issue_and_validate(self, cloud):
        token = cloud.keystone.issue_token("alice", "alice-secret", "myProject")
        credentials = cloud.keystone.validate_token(token)
        assert credentials["user_id"] == "alice"
        assert credentials["roles"] == ["admin"]
        assert credentials["project_id"] == "myProject"

    def test_bad_password(self, cloud):
        with pytest.raises(CloudError):
            cloud.keystone.issue_token("alice", "wrong", "myProject")

    def test_unknown_project(self, cloud):
        with pytest.raises(CloudError):
            cloud.keystone.issue_token("alice", "alice-secret", "ghost")

    def test_validate_unknown_token(self, cloud):
        assert cloud.keystone.validate_token("nope") is None

    def test_revoke(self, cloud):
        token = cloud.keystone.issue_token("alice", "alice-secret", "myProject")
        cloud.keystone.revoke_token(token)
        assert cloud.keystone.validate_token(token) is None

    def test_revoke_unknown_is_noop(self, cloud):
        cloud.keystone.revoke_token("ghost")

    def test_tokens_are_unique(self, cloud):
        first = cloud.keystone.issue_token("alice", "alice-secret", "myProject")
        second = cloud.keystone.issue_token("alice", "alice-secret", "myProject")
        assert first != second


class TestProjects:
    def test_duplicate_project_name(self, cloud):
        with pytest.raises(CloudError):
            cloud.keystone.create_project("myProject")

    def test_create_user_registers_password(self, cloud):
        cloud.keystone.create_user("dave", "dave", "pw", [])
        cloud.keystone.rbac.assign("user", "myProject", user_id="dave")
        token = cloud.keystone.issue_token("dave", "pw", "myProject")
        assert cloud.keystone.validate_token(token)["roles"] == ["user"]

    def test_disabled_project_rejects_tokens(self, cloud):
        cloud.keystone.create_project("off", project_id="off", enabled=False)
        with pytest.raises(CloudError):
            cloud.keystone.issue_token("alice", "alice-secret", "off")


class TestHTTPSurface:
    def test_token_endpoint(self, cloud):
        client = cloud.client()
        response = client.post(
            "http://keystone/v3/auth/tokens",
            auth_payload("alice", "alice-secret", "myProject"))
        assert response.status_code == 201
        assert response.headers.get("X-Subject-Token")
        assert response.json()["token"]["roles"] == [{"name": "admin"}]

    def test_token_endpoint_bad_credentials(self, cloud):
        response = cloud.client().post(
            "http://keystone/v3/auth/tokens",
            auth_payload("alice", "wrong", "myProject"))
        assert response.status_code == 401

    def test_token_endpoint_malformed(self, cloud):
        response = cloud.client().post(
            "http://keystone/v3/auth/tokens", {"nope": 1})
        assert response.status_code == 400

    def test_issued_token_works_against_cinder(self, cloud):
        response = cloud.client().post(
            "http://keystone/v3/auth/tokens",
            auth_payload("bob", "bob-secret", "myProject"))
        token = response.headers.get("X-Subject-Token")
        client = cloud.client(token)
        assert client.get(
            cloud.cinder_url("/v3/myProject/volumes")).status_code == 200

    def test_list_projects_requires_token(self, cloud):
        assert cloud.client().get(
            "http://keystone/v3/projects").status_code == 401

    def test_list_projects(self, cloud, admin):
        response = admin.get("http://keystone/v3/projects")
        assert response.status_code == 200
        names = [p["name"] for p in response.json()["projects"]]
        assert "myProject" in names

    def test_get_project(self, cloud, user):
        response = user.get("http://keystone/v3/projects/myProject")
        assert response.status_code == 200
        assert response.json()["project"]["name"] == "myProject"

    def test_get_project_missing(self, cloud, user):
        assert user.get("http://keystone/v3/projects/ghost").status_code == 404

    def test_create_project_admin_only(self, cloud, admin, member):
        denied = member.post("http://keystone/v3/projects",
                             {"project": {"name": "new"}})
        assert denied.status_code == 403
        created = admin.post("http://keystone/v3/projects",
                             {"project": {"name": "new"}})
        assert created.status_code == 201

    def test_create_project_requires_name(self, cloud, admin):
        assert admin.post("http://keystone/v3/projects",
                          {"project": {}}).status_code == 400

    def test_create_duplicate_project_conflict(self, cloud, admin):
        response = admin.post("http://keystone/v3/projects",
                              {"project": {"name": "myProject"}})
        assert response.status_code == 409

    def test_delete_project(self, cloud, admin):
        admin.post("http://keystone/v3/projects", {"project": {"name": "tmp"}})
        projects = admin.get("http://keystone/v3/projects").json()["projects"]
        tmp_id = next(p["id"] for p in projects if p["name"] == "tmp")
        assert admin.delete(
            f"http://keystone/v3/projects/{tmp_id}").status_code == 204

    def test_delete_project_member_denied(self, cloud, member):
        assert member.delete(
            "http://keystone/v3/projects/myProject").status_code == 403

    def test_list_users_admin_only(self, cloud, admin, user):
        assert user.get("http://keystone/v3/users").status_code == 403
        response = admin.get("http://keystone/v3/users")
        assert response.status_code == 200
        ids = [u["id"] for u in response.json()["users"]]
        assert ids == ["alice", "bob", "carol"]
