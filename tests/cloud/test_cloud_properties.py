"""Stateful property tests: the cloud simulator never violates its rules.

A hypothesis rule-based machine drives random volume operations (create,
delete, attach, detach, by random users) and checks the Cinder invariants
after every step: quota respected, statuses consistent with attachments,
in-use volumes undeletable, authorization matrix enforced.
"""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.cloud import PrivateCloud

QUOTA = 4
USERS = ("alice", "bob", "carol")
ROLE = {"alice": "admin", "bob": "member", "carol": "user"}


class CinderMachine(RuleBasedStateMachine):
    volumes = Bundle("volumes")

    @initialize()
    def boot(self):
        self.cloud = PrivateCloud.paper_setup(volume_quota=QUOTA)
        tokens = self.cloud.paper_tokens()
        self.clients = {user: self.cloud.client(token)
                        for user, token in tokens.items()}
        self.base = "http://cinder/v3/myProject/volumes"

    # -- operations ----------------------------------------------------------

    @rule(target=volumes, user=st.sampled_from(USERS))
    def create(self, user):
        before = self.cloud.cinder.volume_count("myProject")
        response = self.clients[user].post(self.base, {"volume": {}})
        if ROLE[user] == "user":
            assert response.status_code == 403
            return None
        if before >= QUOTA:
            assert response.status_code == 413
            return None
        assert response.status_code == 202
        return response.json()["volume"]["id"]

    @rule(user=st.sampled_from(USERS), volume_id=volumes)
    def delete(self, user, volume_id):
        if volume_id is None:
            return
        volume = self.cloud.cinder.volumes.get(volume_id)
        pre_status = volume["status"] if volume else None
        response = self.clients[user].delete(f"{self.base}/{volume_id}")
        if ROLE[user] != "admin":
            assert response.status_code == 403
        elif volume is None:
            assert response.status_code == 404
        elif pre_status == "in-use":
            assert response.status_code == 400
            assert self.cloud.cinder.volumes.get(volume_id) is not None
        else:
            assert response.status_code == 204
            assert self.cloud.cinder.volumes.get(volume_id) is None

    @rule(user=st.sampled_from(("alice", "bob")), volume_id=volumes)
    def attach(self, user, volume_id):
        if volume_id is None:
            return
        volume = self.cloud.cinder.volumes.get(volume_id)
        pre_status = volume["status"] if volume else None
        response = self.clients[user].post(
            f"{self.base}/{volume_id}/action",
            {"os-attach": {"server_id": "s1"}})
        if volume is None:
            assert response.status_code == 404
        elif pre_status == "in-use":
            assert response.status_code == 400
        else:
            assert response.status_code == 202

    @rule(user=st.sampled_from(("alice", "bob")), volume_id=volumes)
    def detach(self, user, volume_id):
        if volume_id is None:
            return
        volume = self.cloud.cinder.volumes.get(volume_id)
        pre_status = volume["status"] if volume else None
        response = self.clients[user].post(
            f"{self.base}/{volume_id}/action", {"os-detach": {}})
        if volume is None:
            assert response.status_code == 404
        elif pre_status != "in-use":
            assert response.status_code == 400
        else:
            assert response.status_code == 202

    # -- invariants ------------------------------------------------------------

    @invariant()
    def quota_respected(self):
        if not hasattr(self, "cloud"):
            return
        assert self.cloud.cinder.volume_count("myProject") <= QUOTA

    @invariant()
    def statuses_consistent(self):
        if not hasattr(self, "cloud"):
            return
        for volume in self.cloud.cinder.volumes:
            assert volume["status"] in ("available", "in-use")
            if volume["status"] == "in-use":
                assert volume["attachments"]
            else:
                assert volume["attachments"] == []

    @invariant()
    def listing_matches_store(self):
        if not hasattr(self, "cloud"):
            return
        listed = self.clients["alice"].get(self.base).json()["volumes"]
        assert len(listed) == self.cloud.cinder.volume_count("myProject")


CinderMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
TestCinderStateful = CinderMachine.TestCase
