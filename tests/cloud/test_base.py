"""Tests for ResourceStore and Service plumbing."""

from repro.cloud import ResourceStore, Service
from repro.httpsim import Request
from repro.rbac import Enforcer


class TestResourceStore:
    def test_create_assigns_id(self):
        store = ResourceStore("vol")
        row = store.create({"name": "a"})
        assert row["id"] == "vol-1"
        assert store.create({"name": "b"})["id"] == "vol-2"

    def test_create_explicit_id(self):
        store = ResourceStore("p")
        row = store.create({"name": "x"}, resource_id="myProject")
        assert row["id"] == "myProject"
        assert store.get("myProject") == row

    def test_get_missing(self):
        assert ResourceStore("x").get("nope") is None

    def test_update_merges(self):
        store = ResourceStore("v")
        row = store.create({"name": "a", "size": 1})
        updated = store.update(row["id"], {"size": 5})
        assert updated["size"] == 5
        assert updated["name"] == "a"

    def test_update_cannot_change_id(self):
        store = ResourceStore("v")
        row = store.create({})
        updated = store.update(row["id"], {"id": "hijack"})
        assert updated["id"] == row["id"]
        assert "hijack" not in store

    def test_update_missing(self):
        assert ResourceStore("v").update("ghost", {}) is None

    def test_delete(self):
        store = ResourceStore("v")
        row = store.create({})
        assert store.delete(row["id"]) is True
        assert store.delete(row["id"]) is False
        assert len(store) == 0

    def test_where(self):
        store = ResourceStore("v")
        store.create({"project_id": "p1", "status": "available"})
        store.create({"project_id": "p1", "status": "in-use"})
        store.create({"project_id": "p2", "status": "available"})
        assert len(store.where(project_id="p1")) == 2
        assert len(store.where(project_id="p1", status="in-use")) == 1
        assert store.where(project_id="p9") == []

    def test_contains_and_iter(self):
        store = ResourceStore("v")
        row = store.create({})
        assert row["id"] in store
        assert list(store) == [row]


class TestServiceAuth:
    def make_service(self):
        service = Service("svc", Enforcer.from_dict({"do": "role:admin"}))

        class FakeIdentity:
            def validate_token(self, token):
                if token == "good":
                    return {"roles": ["admin"], "groups": [],
                            "project_id": "p1", "user_id": "u1"}
                if token == "weak":
                    return {"roles": [], "groups": [],
                            "project_id": "p1", "user_id": "u2"}
                return None

        service.identity = FakeIdentity()
        return service

    def test_missing_token_is_401(self):
        service = self.make_service()
        _, error = service.authorize(Request("GET", "/x"), "do")
        assert error.status_code == 401

    def test_invalid_token_is_401(self):
        service = self.make_service()
        request = Request("GET", "/x", headers={"X-Auth-Token": "bad"})
        _, error = service.authorize(request, "do")
        assert error.status_code == 401

    def test_policy_denial_is_403(self):
        service = self.make_service()
        request = Request("GET", "/x", headers={"X-Auth-Token": "weak"})
        _, error = service.authorize(request, "do")
        assert error.status_code == 403

    def test_success_returns_credentials(self):
        service = self.make_service()
        request = Request("GET", "/x", headers={"X-Auth-Token": "good"})
        credentials, error = service.authorize(request, "do")
        assert error is None
        assert credentials["roles"] == ["admin"]

    def test_no_identity_configured_is_401(self):
        service = Service("svc")
        request = Request("GET", "/x", headers={"X-Auth-Token": "good"})
        _, error = service.authorize(request, "anything")
        assert error.status_code == 401
