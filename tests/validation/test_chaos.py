"""Tests for the chaos campaign: parity and indeterminate degradation."""

import json

from repro.core import Verdict
from repro.validation import (
    EXPECTED_BREAKER_SEQUENCE,
    assert_breaker_sequence,
    assert_indeterminate_degradation,
    run_breaker_sequence,
    run_chaos_campaign,
    run_leg,
)


class TestRecoverableFaults:
    def test_verdicts_are_byte_identical_to_the_fault_free_baseline(self):
        report = run_chaos_campaign(count=25, seed=7)
        assert report.parity, (
            f"first divergence at row {report.first_divergence()}")
        assert report.baseline.digest() == report.faulted.digest()
        # Retries actually happened -- parity was earned, not vacuous.
        assert report.faulted.retries > 0
        assert report.baseline.retries == 0
        assert report.faulted.indeterminate == 0

    def test_faulted_leg_pays_extra_probes_but_same_verdict_count(self):
        report = run_chaos_campaign(count=25, seed=7)
        assert len(report.faulted.rows) == len(report.baseline.rows)
        assert report.faulted.probe_count >= report.baseline.probe_count


class TestUnrecoverableFaults:
    def test_dead_substrate_degrades_to_indeterminate_only(self):
        leg = assert_indeterminate_degradation(count=12, seed=7)
        verdicts = {json.loads(row)["verdict"] for row in leg.rows}
        assert verdicts == {Verdict.INDETERMINATE}
        # Every row names the roots that could not be bound.
        for row in leg.rows:
            record = json.loads(row)
            assert record["unbound_roots"]
            assert record["forwarded"] is False

    def test_dead_substrate_never_reports_violations(self):
        from repro.validation.chaos import unrecoverable_program

        leg = run_leg(count=12, seed=7,
                      fault_factory=unrecoverable_program)
        for row in leg.rows:
            assert json.loads(row)["verdict"] not in Verdict.VIOLATIONS


class TestBreakerLifecycle:
    def test_recovery_walks_the_full_event_sequence(self):
        transitions = assert_breaker_sequence()
        assert tuple(transitions) == EXPECTED_BREAKER_SEQUENCE

    def test_sequence_is_read_from_wide_events_not_the_gauge(self):
        monitor, transitions = run_breaker_sequence()
        events = monitor.obs.events.filter(event="breaker_transition",
                                           host="cinder")
        assert [(event.get("from_state"), event.get("to_state"))
                for event in events] == transitions
        # Each transition event names the request that caused it.
        assert all(event.trace_id for event in events)

    def test_requests_during_the_outage_degrade_to_indeterminate(self):
        monitor, _ = run_breaker_sequence(failure_threshold=2)
        verdicts = [verdict.verdict for verdict in monitor.log]
        assert verdicts[:2] == [Verdict.INDETERMINATE,
                                Verdict.INDETERMINATE]
        assert verdicts[-1] != Verdict.INDETERMINATE
