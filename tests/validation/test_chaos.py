"""Tests for the chaos campaign: parity and indeterminate degradation."""

import json

from repro.core import Verdict
from repro.validation import (
    assert_indeterminate_degradation,
    run_chaos_campaign,
    run_leg,
)


class TestRecoverableFaults:
    def test_verdicts_are_byte_identical_to_the_fault_free_baseline(self):
        report = run_chaos_campaign(count=25, seed=7)
        assert report.parity, (
            f"first divergence at row {report.first_divergence()}")
        assert report.baseline.digest() == report.faulted.digest()
        # Retries actually happened -- parity was earned, not vacuous.
        assert report.faulted.retries > 0
        assert report.baseline.retries == 0
        assert report.faulted.indeterminate == 0

    def test_faulted_leg_pays_extra_probes_but_same_verdict_count(self):
        report = run_chaos_campaign(count=25, seed=7)
        assert len(report.faulted.rows) == len(report.baseline.rows)
        assert report.faulted.probe_count >= report.baseline.probe_count


class TestUnrecoverableFaults:
    def test_dead_substrate_degrades_to_indeterminate_only(self):
        leg = assert_indeterminate_degradation(count=12, seed=7)
        verdicts = {json.loads(row)["verdict"] for row in leg.rows}
        assert verdicts == {Verdict.INDETERMINATE}
        # Every row names the roots that could not be bound.
        for row in leg.rows:
            record = json.loads(row)
            assert record["unbound_roots"]
            assert record["forwarded"] is False

    def test_dead_substrate_never_reports_violations(self):
        from repro.validation.chaos import unrecoverable_program

        leg = run_leg(count=12, seed=7,
                      fault_factory=unrecoverable_program)
        for row in leg.rows:
            assert json.loads(row)["verdict"] not in Verdict.VIOLATIONS
