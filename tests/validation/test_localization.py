"""Tests for fault localization from the monitor log."""

from repro.cloud import paper_mutants
from repro.validation import (
    TestOracle,
    default_setup,
    localize,
    render_report,
)


def run_with_mutant(mutant_index):
    cloud, monitor = default_setup()
    mutant = paper_mutants()[mutant_index]
    mutant.apply(cloud)
    oracle = TestOracle(cloud, monitor)
    oracle.run()
    return monitor


class TestLocalize:
    def test_clean_log_yields_nothing(self):
        cloud, monitor = default_setup()
        TestOracle(cloud, monitor).run()
        assert localize(monitor.log) == []
        assert "nothing to localize" in render_report([])

    def test_m1_localized_to_delete_policy(self):
        monitor = run_with_mutant(0)  # member may DELETE
        diagnoses = localize(monitor.log)
        assert len(diagnoses) == 1
        diagnosis = diagnoses[0]
        assert diagnosis.operation == "DELETE(volume)"
        assert diagnosis.action == "volume:delete"
        assert diagnosis.fault_family == "permissive implementation"
        assert diagnosis.requirement_ids == ["1.4"]

    def test_m2_localized_to_post_policy(self):
        monitor = run_with_mutant(1)  # anyone may POST
        diagnoses = localize(monitor.log)
        assert diagnoses[0].action == "volume:post"
        assert diagnoses[0].requirement_ids == ["1.3"]
        assert "privilege escalation" in diagnoses[0].hint

    def test_m3_localized_to_get_policy_as_restrictive(self):
        monitor = run_with_mutant(2)  # only admin may GET
        diagnoses = localize(monitor.log)
        actions = {diagnosis.action for diagnosis in diagnoses}
        assert "volume:get" in actions
        families = {diagnosis.fault_family for diagnosis in diagnoses}
        assert "restrictive implementation" in families

    def test_post_violation_family(self):
        cloud, monitor = default_setup()
        cloud.cinder.delete_success_code = 200
        tokens = cloud.paper_tokens()
        bob = cloud.client(tokens["bob"])
        alice = cloud.client(tokens["alice"])
        vid = bob.post("http://cmonitor/cmonitor/volumes",
                       {"volume": {}}).json()["volume"]["id"]
        alice.delete(f"http://cmonitor/cmonitor/volumes/{vid}")
        diagnoses = localize(monitor.log)
        assert diagnoses[0].fault_family == "wrong effect or status code"
        assert "status code" in diagnoses[0].hint

    def test_occurrences_counted_and_sorted(self):
        monitor = run_with_mutant(2)  # M3 hits several GET/PUT steps
        diagnoses = localize(monitor.log)
        counts = [diagnosis.occurrences for diagnosis in diagnoses]
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == len(monitor.violations())


class TestRenderReport:
    def test_report_structure(self):
        monitor = run_with_mutant(0)
        report = render_report(localize(monitor.log))
        assert "fault hypothesis" in report
        assert "DELETE(volume)" in report
        assert "'volume:delete'" in report
        assert "1.4" in report
