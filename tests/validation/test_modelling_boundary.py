"""The modelling-coverage boundary: what the monitor cannot kill.

The monitor checks exactly what the models express (roles, resource state,
effects).  The scope-leak mutant violates an aspect the paper's behavioral
model does not capture -- token/project scope -- so it must *survive* the
generated monitor.  This is a deliberate negative result documenting the
approach's boundary, not a bug.
"""

import pytest

from repro.cloud import PrivateCloud, ScopeLeakMutant
from repro.validation import MutationCampaign, TestOracle, default_setup


@pytest.fixture()
def two_project_cloud():
    cloud = PrivateCloud.paper_setup()
    cloud.keystone.create_project("otherProject", project_id="otherProject")
    cloud.keystone.rbac.assign("member", "otherProject",
                               group="service_architect")
    foreign_token = cloud.keystone.issue_token("bob", "bob-secret",
                                               "otherProject")
    return cloud, cloud.client(foreign_token)


class TestScopeLeakAtCloudLevel:
    def test_correct_cloud_rejects_cross_project(self, two_project_cloud):
        cloud, foreign = two_project_cloud
        response = foreign.get("http://cinder/v3/myProject/volumes")
        assert response.status_code == 403

    def test_mutant_opens_cross_project_access(self, two_project_cloud):
        cloud, foreign = two_project_cloud
        mutant = ScopeLeakMutant()
        mutant.apply(cloud)
        response = foreign.get("http://cinder/v3/myProject/volumes")
        assert response.status_code == 200
        mutant.revert(cloud)
        assert foreign.get(
            "http://cinder/v3/myProject/volumes").status_code == 403

    def test_mutant_is_authorization_category(self):
        assert ScopeLeakMutant().category == "authorization"


class TestScopeLeakSurvivesStandardMonitor:
    def test_standard_battery_does_not_kill(self):
        # The battery only uses tokens scoped to myProject, so the leak is
        # never exercised, let alone detected.
        result = MutationCampaign().run([ScopeLeakMutant()])
        assert result.kill_rate == 0.0

    def test_even_cross_project_traffic_is_not_flagged(self,
                                                       two_project_cloud):
        # Even when a foreign token reaches the monitor, the generated
        # contract has no scope condition: the modelled guards (role,
        # status, quota) all hold, so the monitor agrees with the mutated
        # cloud.  This pins down *why* the mutant survives.
        cloud, _ = two_project_cloud
        from repro.core import CloudMonitor

        monitor = CloudMonitor.for_cinder(cloud.network, "myProject",
                                          enforcing=False)
        cloud.network.register("cmonitor", monitor.app)
        mutant = ScopeLeakMutant()
        mutant.apply(cloud)
        foreign_token = cloud.keystone.issue_token("bob", "bob-secret",
                                                   "otherProject")
        foreign = cloud.client(foreign_token)
        response = foreign.get("http://cmonitor/cmonitor/volumes")
        assert response.status_code == 200
        assert monitor.log[-1].violation is False
        mutant.revert(cloud)

    def test_documented_boundary_in_campaign_render(self):
        result = MutationCampaign().run([ScopeLeakMutant()])
        text = result.render()
        assert "NO" in text
        assert "cross-project" in text
