"""Tests for the test oracle and request batteries."""

import pytest

from repro.core import Verdict
from repro.validation import (
    TestOracle,
    default_setup,
    extended_battery,
    standard_battery,
)


@pytest.fixture()
def oracle():
    cloud, monitor = default_setup()
    return TestOracle(cloud, monitor)


class TestStandardBattery:
    def test_covers_all_requirements(self):
        # Both an authorized and an unauthorized caller per requirement.
        steps = standard_battery()
        methods = {step.method for step in steps}
        assert methods == {"GET", "PUT", "POST", "DELETE"}
        users = {step.user for step in steps}
        assert users == {"alice", "bob", "carol"}

    def test_denied_steps_present(self):
        names = [step.name for step in standard_battery()]
        assert "post-user-denied" in names
        assert "delete-member-denied" in names
        assert "put-user-denied" in names

    def test_extended_adds_functional_edges(self):
        standard_names = {step.name for step in standard_battery()}
        extended_names = {step.name for step in extended_battery()}
        assert standard_names < extended_names
        assert "post-at-quota" in extended_names
        assert "delete-in-use" in extended_names


class TestOracleRuns:
    def test_standard_run_is_clean(self, oracle):
        oracle.run()
        assert oracle.violations == []
        assert len(oracle.results) == len(standard_battery())

    def test_extended_run_is_clean(self, oracle):
        oracle.run(extended_battery())
        assert oracle.violations == []

    def test_results_record_names_and_codes(self, oracle):
        oracle.run()
        by_name = dict(oracle.results)
        assert by_name["post-admin"].status_code == 202
        assert by_name["post-user-denied"].status_code == 403
        assert by_name["get-collection-user"].status_code == 200
        assert by_name["delete-admin"].status_code == 204

    def test_ensure_volume_creates_only_when_missing(self, oracle):
        first = oracle._ensure_volume()
        second = oracle._ensure_volume()
        assert first == second

    def test_violated_requirements_empty_on_clean_cloud(self, oracle):
        oracle.run()
        assert oracle.violated_requirements() == []

    def test_oracle_monitor_log_coverage(self, oracle):
        oracle.run()
        coverage = oracle.monitor.coverage
        assert coverage.coverage == 1.0  # every Table-I requirement exercised

    def test_quota_fill_prepare(self, oracle):
        step = next(step for step in extended_battery()
                    if step.name == "post-at-quota")
        response = oracle.run_step(step)
        # Audit mode: the monitor forwards, the correct cloud rejects (413),
        # both agree the request is invalid.
        assert response.status_code == 413
        assert oracle.monitor.log[-1].verdict == Verdict.INVALID_AGREED

    def test_in_use_delete_prepare(self, oracle):
        step = next(step for step in extended_battery()
                    if step.name == "delete-in-use")
        response = oracle.run_step(step)
        assert response.status_code == 400
        assert oracle.monitor.log[-1].verdict == Verdict.INVALID_AGREED
