"""Tests for the mutation campaign (the paper's 3-mutant validation)."""

import pytest

from repro.cloud import PolicyMutant, extended_mutants, paper_mutants
from repro.errors import ValidationError
from repro.validation import (
    MutationCampaign,
    default_setup,
    extended_battery,
)


@pytest.fixture(scope="module")
def paper_result():
    """Run the paper's campaign once for the whole module (it is not cheap)."""
    return MutationCampaign().run(paper_mutants())


class TestPaperCampaign:
    def test_baseline_clean(self, paper_result):
        assert paper_result.baseline_clean

    def test_all_three_mutants_killed(self, paper_result):
        # The headline claim of Section VI-D.
        assert paper_result.kill_rate == 1.0
        assert [record.mutant.mutant_id for record in paper_result.killed] \
            == ["M1", "M2", "M3"]

    def test_kill_records_name_requirements(self, paper_result):
        by_id = {record.mutant.mutant_id: record
                 for record in paper_result.records}
        assert by_id["M1"].implicated_requirements == ["1.4"]
        assert by_id["M2"].implicated_requirements == ["1.3"]
        assert "1.1" in by_id["M3"].implicated_requirements

    def test_render_contains_matrix(self, paper_result):
        text = paper_result.render()
        assert "baseline clean: yes" in text
        assert "kill rate: 3/3 (100%)" in text
        assert "M2" in text


class TestExtendedCampaign:
    def test_extended_battery_kills_functional_mutants(self):
        campaign = MutationCampaign(battery=extended_battery())
        result = campaign.run(extended_mutants())
        assert result.kill_rate == 1.0

    def test_standard_battery_misses_functional_mutants(self):
        # Ablation: without the functional edge steps, the quota-bypass and
        # status-check mutants survive -- battery design matters.
        campaign = MutationCampaign()
        result = campaign.run(extended_mutants())
        survivors = {record.mutant.mutant_id for record in result.survived}
        assert survivors == {"M4", "M5"}


class TestCampaignDiscipline:
    def test_mutants_reverted_after_run(self):
        mutants = paper_mutants()
        MutationCampaign().run(mutants)
        # Applying again must work: the campaign reverted each mutant.
        cloud, _ = default_setup()
        for mutant in mutants:
            mutant.apply(cloud)
            mutant.revert(cloud)

    def test_dirty_baseline_rejected(self):
        def broken_setup():
            cloud, monitor = default_setup()
            # Sabotage the real cloud so the baseline itself violates.
            cloud.cinder.policy.set_rule("volume:get", "role:admin")
            return cloud, monitor

        campaign = MutationCampaign(setup=broken_setup)
        with pytest.raises(ValidationError):
            campaign.run(paper_mutants())

    def test_fresh_cloud_per_mutant(self):
        # A mutant that deletes the policy action entirely must not leak
        # into the next mutant's run.
        destructive = PolicyMutant("MX", "deny everything on GET",
                                   "volume:get", "!")
        campaign = MutationCampaign()
        result = campaign.run([destructive, paper_mutants()[0]])
        assert result.records[0].killed      # GET denied -> rejected-valid
        assert result.records[1].killed      # M1 still killed afterwards

    def test_empty_mutant_list(self):
        result = MutationCampaign().run([])
        assert result.kill_rate == 1.0
        assert result.records == []
