"""Tests for the overload campaign: parity when idle, grace under load."""

import json

import pytest

from repro.validation import (
    assert_burst_invariants,
    burst_config,
    generous_config,
    make_burst_trace,
    make_calm_trace,
    overload_config,
    run_burst_campaign,
    run_overload_leg,
    run_parity_campaign,
)


@pytest.fixture(scope="module")
def parity():
    return run_parity_campaign()


@pytest.fixture(scope="module")
def burst():
    return run_burst_campaign()


class TestConfigs:
    def test_disabled_config_turns_every_control_off(self):
        config = overload_config(enabled=False)
        assert config.deadline.enabled is False
        assert config.admission.enabled is False
        assert config.degradation.enabled is False

    def test_generous_config_is_enabled_but_unreachable(self):
        config = generous_config()
        assert config.deadline.enabled
        assert config.admission.enabled
        assert config.degradation.enabled
        assert config.deadline.timeout >= 1e6
        assert config.admission.queue_seconds >= 1e6
        # Alarm escalation is the one ladder input with no numeric
        # threshold to push out of reach, so generous means off.
        assert config.degradation.alarm_escalation is False

    def test_burst_config_uses_tight_thresholds(self):
        config = burst_config()
        assert config.deadline.timeout < config.admission.queue_seconds

    def test_traces_are_deterministic(self):
        first = [entry.to_json() for entry in make_burst_trace()]
        second = [entry.to_json() for entry in make_burst_trace()]
        assert first == second
        assert all(entry.at is not None for entry in make_calm_trace())


class TestParity:
    def test_generous_controls_are_byte_invisible(self, parity):
        assert parity.verdict_parity
        assert parity.metrics_parity
        assert parity.events_parity
        assert parity.parity

    def test_report_shape(self, parity):
        report = parity.to_dict()
        assert report["parity"] is True
        assert report["verdict_count"] == 12


class TestBurst:
    def test_invariants_hold(self, burst):
        assert burst.ok
        assert_burst_invariants(burst)

    def test_every_request_answered_and_forwarded(self, burst):
        assert burst.all_answered
        assert burst.all_forwarded
        assert all(status < 500 for status in burst.run.statuses)

    def test_ladder_walks_down_and_recovers(self, burst):
        assert burst.run.shed > 0
        assert burst.run.modes_seen == ["full", "cached_only",
                                        "audit_only"]
        assert burst.run.final_mode == "full"
        assert burst.run.transitions[0] == ("full", "cached_only")
        assert burst.run.transitions[-1] == ("cached_only", "full")

    def test_deadline_exhaustion_degrades_instead_of_blocking(self, burst):
        # The mid-burst write invalidates the probe cache, so lagged
        # requests probe live on exhausted budgets and must degrade
        # with the deadline_exceeded reason -- never stall or 5xx.
        rows = [json.loads(row) for row in burst.run.rows]
        degraded = [row for row in rows
                    if "deadline_exceeded" in (row.get("message") or "")]
        assert degraded
        assert all(row["verdict"] == "indeterminate" for row in degraded)

    def test_digests_are_stable_across_runs(self, burst):
        again = run_burst_campaign()
        assert again.run.verdict_digest() == burst.run.verdict_digest()
        assert again.run.metrics_digest == burst.run.metrics_digest
        assert again.run.events_digest == burst.run.events_digest


class TestLeg:
    def test_calm_leg_stays_in_full_mode(self):
        run = run_overload_leg(make_calm_trace(), generous_config())
        assert run.shed == 0
        assert run.modes_seen == ["full"]
        assert run.final_mode == "full"
        assert run.admission_stats["shed"] == 0
