"""Tests for the Markdown validation report."""

import pytest

from repro.cloud import ScopeLeakMutant, paper_mutants
from repro.validation import (
    MutationCampaign,
    TestOracle,
    default_setup,
    session_report,
)


@pytest.fixture(scope="module")
def clean_monitor():
    cloud, monitor = default_setup()
    TestOracle(cloud, monitor).run()
    return monitor


@pytest.fixture(scope="module")
def violating_monitor():
    cloud, monitor = default_setup()
    paper_mutants()[0].apply(cloud)
    TestOracle(cloud, monitor).run()
    return monitor


class TestMonitorSection:
    def test_traffic_summary(self, clean_monitor):
        report = session_report(clean_monitor)
        assert "# Cloud monitor validation report" in report
        assert "13 requests monitored, 0 violation(s)." in report

    def test_verdict_histogram(self, clean_monitor):
        report = session_report(clean_monitor)
        assert "| valid | 9 |" in report
        assert "| invalid-agreed | 4 |" in report

    def test_coverage_table(self, clean_monitor):
        report = session_report(clean_monitor)
        assert "| 1.4 |" in report
        assert "Coverage: **100%**" in report

    def test_no_localization_when_clean(self, clean_monitor):
        assert "Fault localization" not in session_report(clean_monitor)

    def test_localization_when_violating(self, violating_monitor):
        report = session_report(violating_monitor)
        assert "Fault localization" in report
        assert "'volume:delete'" in report

    def test_uncovered_requirements_called_out(self):
        cloud, monitor = default_setup()
        # Only run the first battery step: most requirements untouched.
        from repro.validation import standard_battery

        oracle = TestOracle(cloud, monitor)
        oracle.run_step(standard_battery()[0])
        report = session_report(monitor)
        assert "Uncovered:" in report
        assert "extend the battery" in report

    def test_custom_title(self, clean_monitor):
        report = session_report(clean_monitor, title="Nightly run")
        assert report.startswith("# Nightly run")


class TestCampaignSection:
    @pytest.fixture(scope="class")
    def campaign_result(self):
        return MutationCampaign().run(paper_mutants() + [ScopeLeakMutant()])

    def test_kill_matrix_table(self, campaign_result):
        report = session_report(campaign=campaign_result)
        assert "## Mutation campaign" in report
        assert "Kill rate: **3/4**" in report

    def test_survivors_called_out(self, campaign_result):
        report = session_report(campaign=campaign_result)
        assert "Survivors: M7" in report
        assert "model the violated property" in report

    def test_combined_report(self, clean_monitor, campaign_result):
        report = session_report(clean_monitor, campaign_result)
        assert "## Monitored traffic" in report
        assert "## Mutation campaign" in report

    def test_empty_report(self):
        report = session_report()
        assert report.startswith("# Cloud monitor validation report")
