"""Smoke tests for the installed console scripts (subprocess level)."""

import subprocess
import sys

import pytest


def run_module(module, *args):
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True, text=True, timeout=120)


class TestCloudmonEntryPoint:
    def test_table(self):
        result = run_module("repro.cli", "table")
        assert result.returncode == 0
        assert "proj_administrator" in result.stdout

    def test_check(self):
        result = run_module("repro.cli", "check")
        assert result.returncode == 0

    def test_campaign(self):
        result = run_module("repro.cli", "campaign")
        assert result.returncode == 0
        assert "kill rate: 3/3 (100%)" in result.stdout

    def test_error_paths_exit_nonzero(self):
        result = run_module("repro.cli", "contracts", "PATCH(volume)")
        assert result.returncode == 2
        assert "error" in result.stderr


class TestUml2djangoEntryPoint:
    def test_full_invocation(self, tmp_path):
        from repro.core import cinder_behavior_model, cinder_resource_model
        from repro.uml import write_xmi_file

        xmi_path = str(tmp_path / "models.xmi")
        write_xmi_file(xmi_path, cinder_resource_model(),
                       cinder_behavior_model())
        result = run_module("repro.core.codegen.cli", "cmonitor", xmi_path,
                            "--output", str(tmp_path))
        assert result.returncode == 0
        assert (tmp_path / "cmonitor" / "views.py").exists()
        assert "wrote cmonitor/views.py" in result.stdout

    def test_missing_input_fails(self, tmp_path):
        result = run_module("repro.core.codegen.cli", "cm",
                            "/nonexistent.xmi", "--output", str(tmp_path))
        assert result.returncode == 1
