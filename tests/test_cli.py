"""Tests for the cloudmon command line."""

import pytest

from repro.cli import main


class TestTable:
    def test_prints_table(self, capsys):
        assert main(["table"]) == 0
        out = capsys.readouterr().out
        assert "proj_administrator" in out
        assert "DELETE" in out


class TestContracts:
    def test_all_contracts(self, capsys):
        assert main(["contracts"]) == 0
        out = capsys.readouterr().out
        assert "PreCondition(DELETE(" in out
        assert "PreCondition(POST(" in out
        assert "PostCondition(GET(" in out

    def test_single_trigger(self, capsys):
        assert main(["contracts", "DELETE(volume)"]) == 0
        out = capsys.readouterr().out
        assert "PreCondition(DELETE(" in out
        assert "PreCondition(POST(" not in out

    def test_bad_trigger_reports_error(self, capsys):
        assert main(["contracts", "PATCH(volume)"]) == 2
        assert "error" in capsys.readouterr().err


class TestDemo:
    def test_audit_demo_clean(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "violations: 0" in out
        assert "coverage: 100%" in out

    def test_enforcing_demo_clean(self, capsys):
        assert main(["demo", "--enforcing"]) == 0
        out = capsys.readouterr().out
        assert "pre-blocked" in out

    def test_extended_demo(self, capsys):
        assert main(["demo", "--extended"]) == 0
        out = capsys.readouterr().out
        assert "post-at-quota" in out


class TestCampaign:
    def test_paper_campaign(self, capsys):
        assert main(["campaign"]) == 0
        out = capsys.readouterr().out
        assert "kill rate: 3/3 (100%)" in out
        assert "baseline clean: yes" in out

    def test_extended_campaign(self, capsys):
        assert main(["campaign", "--extended"]) == 0
        out = capsys.readouterr().out
        assert "kill rate: 6/6 (100%)" in out


class TestDot:
    def test_resources_dot(self, capsys):
        assert main(["dot", "resources"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "Cinder"')
        assert '"volume"' in out

    def test_behavior_dot(self, capsys):
        assert main(["dot", "behavior"]) == 0
        out = capsys.readouterr().out
        assert "DELETE(volume)" in out

    def test_bad_model_choice(self):
        with pytest.raises(SystemExit):
            main(["dot", "nothing"])


class TestSlice:
    def test_slice_volume(self, capsys):
        assert main(["slice", "volume"]) == 0
        out = capsys.readouterr().out
        assert "sliced models:" in out
        assert "PreCondition(DELETE(" in out

    def test_slice_with_method_filter(self, capsys):
        assert main(["slice", "volume", "--methods", "DELETE"]) == 0
        out = capsys.readouterr().out
        assert "3 transitions" in out

    def test_slice_unknown_resource(self, capsys):
        assert main(["slice", "ghost"]) == 2
        assert "error" in capsys.readouterr().err


class TestLocalize:
    def test_localize_from_log(self, capsys, tmp_path):
        from repro.cloud import paper_mutants
        from repro.core import write_log
        from repro.validation import TestOracle, default_setup

        cloud, monitor = default_setup()
        mutant = paper_mutants()[0]
        mutant.apply(cloud)
        TestOracle(cloud, monitor).run()
        logfile = str(tmp_path / "audit.jsonl")
        write_log(monitor.log, logfile)

        assert main(["localize", logfile]) == 0
        out = capsys.readouterr().out
        assert "volume:delete" in out

    def test_localize_clean_log(self, capsys, tmp_path):
        from repro.core import write_log
        from repro.validation import TestOracle, default_setup

        cloud, monitor = default_setup()
        TestOracle(cloud, monitor).run()
        logfile = str(tmp_path / "audit.jsonl")
        write_log(monitor.log, logfile)
        assert main(["localize", logfile]) == 0
        assert "nothing to localize" in capsys.readouterr().out


class TestCheck:
    def test_builtin_models_pass(self, capsys):
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "well-formed" in out

    def test_release2_models_pass(self, capsys):
        assert main(["check", "--release2"]) == 0


class TestReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "# Cloud monitor validation report" in out
        assert "Kill rate: **3/3**" in out
        assert "Coverage: **100%**" in out

    def test_report_to_file(self, capsys, tmp_path):
        target = str(tmp_path / "report.md")
        assert main(["report", "--output", target]) == 0
        with open(target, encoding="utf-8") as handle:
            content = handle.read()
        assert "## Mutation campaign" in content
        assert f"wrote {target}" in capsys.readouterr().out


class TestEvents:
    def test_text_output_one_line_per_event(self, capsys):
        assert main(["events", "--deterministic"]) == 0
        out = capsys.readouterr().out
        assert "monitor_request" in out
        assert "events shown" in out

    def test_json_document_with_filters(self, capsys):
        assert main(["events", "--deterministic", "--json",
                     "--event", "monitor_request", "--limit", "2"]) == 0
        import json

        document = json.loads(capsys.readouterr().out)
        assert len(document["events"]) == 2
        assert all(event["event"] == "monitor_request"
                   for event in document["events"])
        assert document["emitted"] >= document["retained"]

    def test_verdict_filter(self, capsys):
        assert main(["events", "--deterministic", "--json",
                     "--verdict", "valid"]) == 0
        import json

        document = json.loads(capsys.readouterr().out)
        assert document["events"]
        assert all(event["verdict"] == "valid"
                   for event in document["events"])

    def test_jsonl_export_to_file(self, capsys, tmp_path):
        import json

        target = str(tmp_path / "events.jsonl")
        assert main(["events", "--deterministic",
                     "--event", "monitor_request",
                     "--output", target]) == 0
        assert f"wrote" in capsys.readouterr().out
        with open(target, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        assert records
        assert all(record["event"] == "monitor_request"
                   for record in records)

    def test_deterministic_json_is_byte_stable(self, capsys):
        def run():
            assert main(["events", "--deterministic", "--json"]) == 0
            return capsys.readouterr().out

        assert run() == run()


class TestSlo:
    def test_table_output_lists_objectives(self, capsys):
        assert main(["slo", "--deterministic"]) == 0
        out = capsys.readouterr().out
        assert "overall: ok" in out
        assert "verdict-availability" in out
        assert "stage-latency" in out
        assert "indeterminate-rate" in out

    def test_json_report_shape(self, capsys):
        import json

        assert main(["slo", "--deterministic", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["overall"] == "ok"
        assert {entry["name"] for entry in report["slos"]} \
            == {"verdict-availability", "stage-latency",
                "indeterminate-rate", "shed-rate"}
        for entry in report["slos"]:
            assert [window["window"] for window in entry["windows"]] \
                == ["fast", "slow"]

    def test_deterministic_output_is_byte_stable(self, capsys):
        def run():
            assert main(["slo", "--deterministic", "--json"]) == 0
            return capsys.readouterr().out

        assert run() == run()


class TestChaosBreakerLine:
    def test_chaos_reports_the_breaker_lifecycle(self, capsys):
        assert main(["chaos", "--requests", "12"]) == 0
        out = capsys.readouterr().out
        assert "breaker lifecycle:    closed -> open -> half-open " \
               "-> closed" in out


class TestFleet:
    def test_parity_mode_matches_serial(self, capsys):
        assert main(["fleet", "--shards", "3", "--requests", "16"]) == 0
        out = capsys.readouterr().out
        assert "verdict parity vs serial:  OK" in out

    def test_parity_json_summary(self, capsys):
        import json

        assert main(["fleet", "--shards", "2", "--fanout", "4",
                     "--requests", "16", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["parity"] is True
        assert summary["serial_digest"] == summary["fleet_digest"]
        assert summary["verdicts"] == 16

    def test_bench_mode_appends_trajectory(self, capsys, tmp_path):
        import json

        trajectory = tmp_path / "BENCH_scaling.json"
        assert main(["fleet", "--bench", "--shards", "2",
                     "--requests", "16", "--latency", "0.001",
                     "--trajectory", str(trajectory)]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        recorded = json.loads(trajectory.read_text())
        assert len(recorded["entries"]) == 1
        assert recorded["entries"][0]["peak_shards"] == 2


class TestOverload:
    def test_campaign_summary(self, capsys):
        assert main(["overload"]) == 0
        out = capsys.readouterr().out
        assert "parity (generous controls): OK" in out
        assert "requests shed:" in out
        assert "final mode:                 full" in out

    def test_json_summary(self, capsys):
        import json

        assert main(["overload", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["parity"]["parity"] is True
        assert summary["burst"]["ok"] is True
        assert summary["burst"]["modes_seen"] == [
            "full", "cached_only", "audit_only"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
