"""Tests for the cloudmon command line."""

import pytest

from repro.cli import main


class TestTable:
    def test_prints_table(self, capsys):
        assert main(["table"]) == 0
        out = capsys.readouterr().out
        assert "proj_administrator" in out
        assert "DELETE" in out


class TestContracts:
    def test_all_contracts(self, capsys):
        assert main(["contracts"]) == 0
        out = capsys.readouterr().out
        assert "PreCondition(DELETE(" in out
        assert "PreCondition(POST(" in out
        assert "PostCondition(GET(" in out

    def test_single_trigger(self, capsys):
        assert main(["contracts", "DELETE(volume)"]) == 0
        out = capsys.readouterr().out
        assert "PreCondition(DELETE(" in out
        assert "PreCondition(POST(" not in out

    def test_bad_trigger_reports_error(self, capsys):
        assert main(["contracts", "PATCH(volume)"]) == 2
        assert "error" in capsys.readouterr().err


class TestDemo:
    def test_audit_demo_clean(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "violations: 0" in out
        assert "coverage: 100%" in out

    def test_enforcing_demo_clean(self, capsys):
        assert main(["demo", "--enforcing"]) == 0
        out = capsys.readouterr().out
        assert "pre-blocked" in out

    def test_extended_demo(self, capsys):
        assert main(["demo", "--extended"]) == 0
        out = capsys.readouterr().out
        assert "post-at-quota" in out


class TestCampaign:
    def test_paper_campaign(self, capsys):
        assert main(["campaign"]) == 0
        out = capsys.readouterr().out
        assert "kill rate: 3/3 (100%)" in out
        assert "baseline clean: yes" in out

    def test_extended_campaign(self, capsys):
        assert main(["campaign", "--extended"]) == 0
        out = capsys.readouterr().out
        assert "kill rate: 6/6 (100%)" in out


class TestDot:
    def test_resources_dot(self, capsys):
        assert main(["dot", "resources"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "Cinder"')
        assert '"volume"' in out

    def test_behavior_dot(self, capsys):
        assert main(["dot", "behavior"]) == 0
        out = capsys.readouterr().out
        assert "DELETE(volume)" in out

    def test_bad_model_choice(self):
        with pytest.raises(SystemExit):
            main(["dot", "nothing"])


class TestSlice:
    def test_slice_volume(self, capsys):
        assert main(["slice", "volume"]) == 0
        out = capsys.readouterr().out
        assert "sliced models:" in out
        assert "PreCondition(DELETE(" in out

    def test_slice_with_method_filter(self, capsys):
        assert main(["slice", "volume", "--methods", "DELETE"]) == 0
        out = capsys.readouterr().out
        assert "3 transitions" in out

    def test_slice_unknown_resource(self, capsys):
        assert main(["slice", "ghost"]) == 2
        assert "error" in capsys.readouterr().err


class TestLocalize:
    def test_localize_from_log(self, capsys, tmp_path):
        from repro.cloud import paper_mutants
        from repro.core import write_log
        from repro.validation import TestOracle, default_setup

        cloud, monitor = default_setup()
        mutant = paper_mutants()[0]
        mutant.apply(cloud)
        TestOracle(cloud, monitor).run()
        logfile = str(tmp_path / "audit.jsonl")
        write_log(monitor.log, logfile)

        assert main(["localize", logfile]) == 0
        out = capsys.readouterr().out
        assert "volume:delete" in out

    def test_localize_clean_log(self, capsys, tmp_path):
        from repro.core import write_log
        from repro.validation import TestOracle, default_setup

        cloud, monitor = default_setup()
        TestOracle(cloud, monitor).run()
        logfile = str(tmp_path / "audit.jsonl")
        write_log(monitor.log, logfile)
        assert main(["localize", logfile]) == 0
        assert "nothing to localize" in capsys.readouterr().out


class TestCheck:
    def test_builtin_models_pass(self, capsys):
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "well-formed" in out

    def test_release2_models_pass(self, capsys):
        assert main(["check", "--release2"]) == 0


class TestReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "# Cloud monitor validation report" in out
        assert "Kill rate: **3/3**" in out
        assert "Coverage: **100%**" in out

    def test_report_to_file(self, capsys, tmp_path):
        target = str(tmp_path / "report.md")
        assert main(["report", "--output", target]) == 0
        with open(target, encoding="utf-8") as handle:
            content = handle.read()
        assert "## Mutation campaign" in content
        assert f"wrote {target}" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
