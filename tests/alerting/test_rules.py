"""Alarm rule validation and severity mapping."""

import pytest

from repro.alerting import (
    CRITICAL,
    OK,
    WARN,
    AlarmRule,
    default_rules,
    rule_for_slo,
)
from repro.errors import AlarmError
from repro.obs.slo import default_slos


class TestAlarmRuleValidation:
    def test_defaults_are_valid(self):
        rule = AlarmRule(name="r", slo="s")
        assert rule.warn_breaches == 1
        assert rule.critical_breaches == 0
        assert rule.clear_after == 2

    def test_empty_name_rejected(self):
        with pytest.raises(AlarmError):
            AlarmRule(name="", slo="s")

    def test_empty_slo_rejected(self):
        with pytest.raises(AlarmError):
            AlarmRule(name="r", slo="")

    def test_nonpositive_warn_threshold_rejected(self):
        with pytest.raises(AlarmError):
            AlarmRule(name="r", slo="s", warn_breaches=0)

    def test_negative_critical_threshold_rejected(self):
        with pytest.raises(AlarmError):
            AlarmRule(name="r", slo="s", critical_breaches=-1)

    def test_nonpositive_clear_after_rejected(self):
        with pytest.raises(AlarmError):
            AlarmRule(name="r", slo="s", clear_after=0)

    def test_rules_are_frozen(self):
        rule = AlarmRule(name="r", slo="s")
        with pytest.raises(AttributeError):
            rule.name = "other"


class TestSeverityMapping:
    def test_zero_breaching_is_ok(self):
        rule = AlarmRule(name="r", slo="s")
        assert rule.severity_for(0, 2) == OK

    def test_warn_at_warn_threshold(self):
        rule = AlarmRule(name="r", slo="s", warn_breaches=1)
        assert rule.severity_for(1, 2) == WARN

    def test_critical_zero_means_all_windows(self):
        rule = AlarmRule(name="r", slo="s", critical_breaches=0)
        assert rule.critical_threshold(2) == 2
        assert rule.severity_for(2, 2) == CRITICAL
        assert rule.severity_for(1, 2) == WARN

    def test_explicit_critical_threshold(self):
        rule = AlarmRule(name="r", slo="s", warn_breaches=1,
                         critical_breaches=3)
        assert rule.severity_for(2, 4) == WARN
        assert rule.severity_for(3, 4) == CRITICAL

    def test_single_window_catalog(self):
        rule = AlarmRule(name="r", slo="s")
        assert rule.severity_for(1, 1) == CRITICAL


class TestDefaultRules:
    def test_one_rule_per_slo(self):
        slos = default_slos()
        rules = default_rules(slos)
        assert [rule.slo for rule in rules] == [slo.name for slo in slos]
        assert all(rule.name == f"{rule.slo}-burn" for rule in rules)

    def test_rule_for_slo(self):
        rules = default_rules(default_slos(), clear_after=5)
        rule = rule_for_slo(rules, "verdict-availability")
        assert rule is not None
        assert rule.clear_after == 5
        assert rule_for_slo(rules, "no-such-slo") is None

    def test_critical_below_warn_rejected(self):
        with pytest.raises(AlarmError):
            AlarmRule(name="r", slo="s", warn_breaches=2,
                      critical_breaches=1)
