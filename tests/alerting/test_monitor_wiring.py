"""Alarms wired into the monitor: the routes and health semantics.

The monitor evaluates its alarm engine after every monitored request,
publishes the full document on ``/-/alarms``, folds the compact status
block into ``/-/health``, and turns the health endpoint 503 while any
alarm stands at critical.
"""

import pytest

from repro.alerting import CRITICAL, AlarmEngine, AlarmRule, MemorySink
from repro.errors import AlarmError
from repro.obs import ManualClock, Observability
from repro.validation.campaign import _default_setup

MONITOR = "http://cmonitor/cmonitor/volumes"


def deterministic_setup(enforcing=False):
    obs = Observability(clock=ManualClock(tick=1e-4))
    cloud, monitor = _default_setup(enforcing=enforcing, observability=obs)
    tokens = cloud.paper_tokens()
    clients = {user: cloud.client(token) for user, token in tokens.items()}
    return cloud, monitor, clients


class TestAlarmsRoute:
    def test_alarms_document_served(self):
        cloud, monitor, clients = deterministic_setup()
        clients["bob"].post(MONITOR, {"volume": {"name": "v"}})
        response = monitor.app.get("/-/alarms")
        assert response.status_code == 200
        report = response.json()
        assert set(report) == {"generated_at", "overall", "alarms",
                               "transitions"}
        assert report["overall"] == "ok"
        assert {alarm["alarm"] for alarm in report["alarms"]} \
            == {rule.name for rule in monitor.alarms.rules}

    def test_default_rules_mirror_the_slo_catalog(self):
        cloud, monitor, clients = deterministic_setup()
        assert sorted(rule.slo for rule in monitor.alarms.rules) \
            == sorted(slo.name for slo in monitor.slos.slos)

    def test_every_request_evaluates_the_engine(self):
        cloud, monitor, clients = deterministic_setup()
        before = monitor.alarms.last_evaluated
        clients["carol"].get(MONITOR)
        assert monitor.alarms.last_evaluated > before


class TestHealthSemantics:
    def test_health_carries_the_alarm_block(self):
        cloud, monitor, clients = deterministic_setup()
        clients["carol"].get(MONITOR)
        response = monitor.app.get("/-/health")
        assert response.status_code == 200
        payload = response.json()
        assert payload["alarms"] == {"overall": "ok", "active": []}

    def test_critical_alarm_turns_health_503(self):
        cloud, monitor, clients = deterministic_setup()
        clients["carol"].get(MONITOR)
        monitor.alarms.states[0].state = CRITICAL
        response = monitor.app.get("/-/health")
        assert response.status_code == 503
        active = response.json()["alarms"]["active"]
        assert active[0]["state"] == CRITICAL

    def test_alarms_route_itself_stays_200_while_critical(self):
        # The document endpoint reports, it does not gate.
        cloud, monitor, clients = deterministic_setup()
        monitor.alarms.states[0].state = CRITICAL
        assert monitor.app.get("/-/alarms").status_code == 200


class TestConfigureAlarms:
    def test_configure_replaces_rules_and_sinks(self):
        cloud, monitor, clients = deterministic_setup()
        sink = MemorySink()
        rule = AlarmRule(name="only", slo="verdict-availability")
        engine = monitor.configure_alarms(rules=[rule], sinks=[sink])
        assert engine is monitor.alarms
        assert isinstance(engine, AlarmEngine)
        assert [r.name for r in monitor.alarms.rules] == ["only"]
        assert monitor.alarms.sinks == [sink]

    def test_configure_rejects_unknown_slo(self):
        cloud, monitor, clients = deterministic_setup()
        with pytest.raises(AlarmError):
            monitor.configure_alarms(
                rules=[AlarmRule(name="r", slo="no-such-slo")])

    def test_reconfigured_engine_keeps_serving_routes(self):
        cloud, monitor, clients = deterministic_setup()
        monitor.configure_alarms(
            rules=[AlarmRule(name="only", slo="verdict-availability")])
        clients["carol"].get(MONITOR)
        report = monitor.app.get("/-/alarms").json()
        assert [alarm["alarm"] for alarm in report["alarms"]] == ["only"]
