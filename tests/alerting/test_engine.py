"""The alarm engine's state machine, sinks, and reports.

The engine is driven through a stub SLO engine so every evaluation's
per-window breach pattern is chosen exactly; the hypothesis properties
at the bottom pin the two semantic guarantees (no CRITICAL without the
full-window breach the rule demands; de-escalation only after
``clear_after`` consecutive calm evaluations).
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alerting import (
    CRITICAL,
    OK,
    WARN,
    AlarmEngine,
    AlarmRule,
    EventLogSink,
    JsonlSink,
    MemorySink,
)
from repro.errors import AlarmError
from repro.obs.events import EventLog


class StubSLOEngine:
    """A scriptable stand-in: each evaluation reads the queued pattern."""

    def __init__(self, slo_names=("availability",), created=0.0):
        self.slos = [SimpleNamespace(name=name, description="")
                     for name in slo_names]
        self.created = created
        self.pattern = {}

    def set_windows(self, slo, breaching_flags):
        self.pattern[slo] = [
            {"window": f"w{index}", "seconds": 300.0 * (index + 1),
             "burn_rate": 20.0 if breaching else 0.0,
             "threshold": 14.4, "breaching": breaching}
            for index, breaching in enumerate(breaching_flags)]

    def window_status(self, now):
        return dict(self.pattern)


def make_engine(clear_after=2, critical_breaches=0, **kwargs):
    stub = StubSLOEngine()
    rule = AlarmRule(name="availability-burn", slo="availability",
                     clear_after=clear_after,
                     critical_breaches=critical_breaches)
    return stub, AlarmEngine(stub, rules=[rule], **kwargs)


def feed(stub, engine, flags, at=1.0):
    stub.set_windows("availability", flags)
    return engine.evaluate(at)


class TestEscalation:
    def test_all_windows_breaching_goes_critical_immediately(self):
        stub, engine = make_engine()
        fired = feed(stub, engine, (True, True))
        assert [t.to_state for t in fired] == [CRITICAL]
        assert engine.overall == CRITICAL
        assert engine.has_critical()

    def test_one_window_breaching_is_warn(self):
        stub, engine = make_engine()
        fired = feed(stub, engine, (True, False))
        assert [t.to_state for t in fired] == [WARN]
        assert not engine.has_critical()

    def test_healthy_windows_fire_nothing(self):
        stub, engine = make_engine()
        assert feed(stub, engine, (False, False)) == []
        assert engine.overall == OK
        assert engine.history == []

    def test_transition_record_shape(self):
        stub, engine = make_engine()
        (transition,) = feed(stub, engine, (True, True), at=2.5)
        record = transition.to_record()
        assert record["alarm"] == "availability-burn"
        assert record["slo"] == "availability"
        assert record["from_state"] == OK
        assert record["to_state"] == CRITICAL
        assert record["severity"] == CRITICAL
        assert record["at"] == 2.5
        assert record["breaching_windows"] == 2
        assert record["window_count"] == 2
        assert set(record["burn_rates"]) == {"w0", "w1"}


class TestHysteresis:
    def test_single_calm_evaluation_does_not_stand_down(self):
        stub, engine = make_engine(clear_after=2)
        feed(stub, engine, (True, True))
        assert feed(stub, engine, (False, False)) == []
        assert engine.overall == CRITICAL

    def test_stands_down_after_clear_after_consecutive_calm(self):
        stub, engine = make_engine(clear_after=2)
        feed(stub, engine, (True, True))
        feed(stub, engine, (False, False))
        fired = feed(stub, engine, (False, False))
        assert [t.to_state for t in fired] == [OK]
        assert engine.overall == OK

    def test_re_breach_resets_the_countdown(self):
        stub, engine = make_engine(clear_after=2)
        feed(stub, engine, (True, True))
        for _ in range(5):  # calm, re-breach, calm, re-breach, ...
            assert feed(stub, engine, (False, False)) == []
            assert feed(stub, engine, (True, True)) == []
        assert engine.overall == CRITICAL

    def test_stand_down_lands_on_max_severity_seen_while_pending(self):
        stub, engine = make_engine(clear_after=2)
        feed(stub, engine, (True, True))       # -> critical
        feed(stub, engine, (False, False))     # pending ok (1/2)
        fired = feed(stub, engine, (True, False))  # warn-calm (2/2)
        assert [t.to_state for t in fired] == [WARN]
        assert engine.overall == WARN

    def test_escalation_never_waits_while_pending(self):
        stub, engine = make_engine(clear_after=3)
        feed(stub, engine, (True, False))      # -> warn
        feed(stub, engine, (False, False))     # pending
        fired = feed(stub, engine, (True, True))
        assert [t.to_state for t in fired] == [CRITICAL]


class TestSinksAndReports:
    def test_event_log_sink_emits_alarm_transition_events(self):
        events = EventLog()
        stub, engine = make_engine(events=events)
        feed(stub, engine, (True, True))
        records = events.to_dicts(event="alarm_transition")
        assert len(records) == 1
        assert records[0]["to_state"] == CRITICAL
        assert records[0]["at"] == 1.0  # evaluation time, not clock time

    def test_memory_sink_collects_records(self):
        sink = MemorySink()
        stub, engine = make_engine(sinks=[sink])
        feed(stub, engine, (True, True))
        feed(stub, engine, (False, False))
        feed(stub, engine, (False, False))
        assert [record["to_state"] for record in sink.records] \
            == [CRITICAL, OK]

    def test_jsonl_sink_appends_rows(self, tmp_path):
        import json

        path = tmp_path / "alarms.jsonl"
        stub, engine = make_engine(sinks=[JsonlSink(str(path))])
        feed(stub, engine, (True, True))
        rows = [json.loads(line)
                for line in path.read_text().splitlines()]
        assert rows[0]["alarm"] == "availability-burn"

    def test_report_is_clockless_and_sorted(self):
        stub, engine = make_engine()
        feed(stub, engine, (True, True), at=4.0)
        report = engine.report()
        assert report["generated_at"] == 4.0
        assert report["overall"] == CRITICAL
        assert len(report["alarms"]) == 1
        assert len(report["transitions"]) == 1

    def test_status_lists_active_alarms_only(self):
        stub, engine = make_engine()
        assert engine.status() == {"overall": OK, "active": []}
        feed(stub, engine, (True, True))
        status = engine.status()
        assert status["overall"] == CRITICAL
        assert status["active"][0]["alarm"] == "availability-burn"

    def test_render_mentions_transitions(self):
        stub, engine = make_engine()
        feed(stub, engine, (True, True))
        text = engine.render()
        assert "availability-burn" in text
        assert "ok -> critical" in text

    def test_history_is_bounded(self):
        stub, engine = make_engine(clear_after=1, keep=4)
        for _ in range(6):
            feed(stub, engine, (True, True))
            feed(stub, engine, (False, False))
        assert len(engine.history) == 4


class TestEngineValidation:
    def test_duplicate_rule_names_rejected(self):
        stub = StubSLOEngine()
        rules = [AlarmRule(name="dup", slo="availability"),
                 AlarmRule(name="dup", slo="availability")]
        with pytest.raises(AlarmError):
            AlarmEngine(stub, rules=rules)

    def test_unknown_slo_rejected(self):
        stub = StubSLOEngine()
        with pytest.raises(AlarmError):
            AlarmEngine(stub, rules=[AlarmRule(name="r", slo="nope")])

    def test_default_rules_cover_the_catalog(self):
        stub = StubSLOEngine(slo_names=("a", "b"))
        engine = AlarmEngine(stub)
        assert sorted(rule.slo for rule in engine.rules) == ["a", "b"]


# -- hypothesis properties -------------------------------------------------

#: A per-evaluation breach pattern for two windows.
patterns = st.lists(
    st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=40)


@settings(max_examples=200, deadline=None)
@given(flags=patterns)
def test_no_critical_without_full_window_breach(flags):
    """CRITICAL (critical_breaches=0) fires only when ALL windows breach."""
    stub, engine = make_engine(clear_after=2)
    for index, pattern in enumerate(flags):
        fired = feed(stub, engine, pattern, at=float(index + 1))
        for transition in fired:
            if transition.to_state == CRITICAL:
                assert all(pattern), (
                    "critical transition without a full-window breach")


@settings(max_examples=200, deadline=None)
@given(flags=patterns, clear_after=st.integers(min_value=1, max_value=4))
def test_de_escalation_requires_clear_after_consecutive_calm(
        flags, clear_after):
    """An alarm stands down only after >= clear_after consecutive
    evaluations strictly below its current severity (anti-flapping)."""
    from repro.alerting import SEVERITY_ORDER

    stub, engine = make_engine(clear_after=clear_after)
    rule = engine.rules[0]
    calm_streak = 0
    state = OK
    for index, pattern in enumerate(flags):
        target = rule.severity_for(sum(pattern), len(pattern))
        calm = SEVERITY_ORDER[target] < SEVERITY_ORDER[state]
        calm_streak = calm_streak + 1 if calm else 0
        fired = feed(stub, engine, pattern, at=float(index + 1))
        for transition in fired:
            went_down = (SEVERITY_ORDER[transition.to_state]
                         < SEVERITY_ORDER[transition.from_state])
            if went_down:
                assert calm_streak >= clear_after, (
                    f"stood down after only {calm_streak} calm "
                    f"evaluations (clear_after={clear_after})")
            assert transition.from_state != transition.to_state
            state = transition.to_state
        if fired:
            # landing on a new state restarts the pending countdown
            calm_streak = 0
        if not fired and calm and calm_streak >= clear_after:
            pytest.fail("calm streak reached clear_after without "
                        "standing down")
