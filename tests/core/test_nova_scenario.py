"""Tests for the second monitored scenario: Nova servers.

Nothing in repro.core is Cinder-specific -- this suite applies the whole
pipeline (models -> contracts -> monitor) to the compute service.
"""

import pytest

from repro.cloud import PrivateCloud
from repro.core import ContractGenerator, Verdict
from repro.core.nova_scenario import (
    HAS_SERVERS,
    NO_SERVER,
    NovaStateProvider,
    monitor_for_nova,
    nova_behavior_model,
    nova_resource_model,
    nova_table,
)
from repro.uml.validation import errors_only, validate_state_machine

MONITOR = "http://smonitor/smonitor/servers"


@pytest.fixture()
def setup():
    cloud = PrivateCloud.paper_setup()
    tokens = cloud.paper_tokens()
    monitor = monitor_for_nova(cloud.network, "myProject", enforcing=True)
    cloud.network.register("smonitor", monitor.app)
    clients = {name: cloud.client(token) for name, token in tokens.items()}
    return cloud, monitor, clients


class TestNovaModels:
    def test_models_well_formed(self):
        machine = nova_behavior_model()
        diagram = nova_resource_model()
        assert errors_only(validate_state_machine(machine, diagram)) == []

    def test_two_states(self):
        machine = nova_behavior_model()
        assert set(machine.states) == {NO_SERVER, HAS_SERVERS}
        assert machine.initial_state().name == NO_SERVER

    def test_requirements_annotated(self):
        machine = nova_behavior_model()
        assert set(machine.security_requirement_ids()) == {
            "2.1", "2.2", "2.3"}

    def test_uri_layout(self):
        diagram = nova_resource_model()
        assert diagram.uri_paths()["Servers"] == "/{project_id}/servers"
        assert diagram.item_uri("server") == \
            "/{project_id}/servers/{server_id}"

    def test_delete_contract_combines_two_transitions(self):
        generator = ContractGenerator(nova_behavior_model(),
                                      nova_resource_model())
        contract = generator.for_trigger("DELETE(server)")
        assert len(contract.cases) == 2
        assert contract.security_requirements == ["2.3"]

    def test_table_policy_matches_nova_service(self):
        # The modelled requirements must agree with the simulated Nova's
        # actual policy for the shared actions.
        policy = nova_table().to_policy()
        assert policy["server:post"] == "role:admin or role:member"
        assert policy["server:delete"] == "role:admin"


class TestNovaMonitor:
    def test_member_creates_server(self, setup):
        cloud, monitor, clients = setup
        response = clients["bob"].post(MONITOR, {"server": {"name": "web"}})
        assert response.status_code == 202
        assert monitor.log[-1].verdict == Verdict.VALID

    def test_user_blocked_from_creating(self, setup):
        cloud, monitor, clients = setup
        response = clients["carol"].post(MONITOR, {"server": {}})
        assert response.status_code == 412
        assert monitor.log[-1].verdict == Verdict.PRE_BLOCKED

    def test_get_item_valid(self, setup):
        cloud, monitor, clients = setup
        sid = clients["bob"].post(
            MONITOR, {"server": {"name": "s"}}).json()["server"]["id"]
        response = clients["carol"].get(f"{MONITOR}/{sid}")
        assert response.status_code == 200
        assert monitor.log[-1].verdict == Verdict.VALID

    def test_member_blocked_from_delete(self, setup):
        cloud, monitor, clients = setup
        sid = clients["bob"].post(
            MONITOR, {"server": {}}).json()["server"]["id"]
        assert clients["bob"].delete(f"{MONITOR}/{sid}").status_code == 412

    def test_admin_deletes(self, setup):
        cloud, monitor, clients = setup
        sid = clients["bob"].post(
            MONITOR, {"server": {}}).json()["server"]["id"]
        assert clients["alice"].delete(f"{MONITOR}/{sid}").status_code == 204
        assert monitor.log[-1].verdict == Verdict.VALID

    def test_coverage_tracks_nova_requirements(self, setup):
        cloud, monitor, clients = setup
        clients["bob"].post(MONITOR, {"server": {}})
        clients["carol"].get(MONITOR)
        assert "2.2" in monitor.coverage.covered_ids()
        assert "2.1" in monitor.coverage.covered_ids()
        assert "2.3" in monitor.coverage.uncovered_ids()

    def test_escalation_mutant_killed(self, setup):
        cloud, _, clients = setup
        audit = monitor_for_nova(cloud.network, "myProject",
                                 enforcing=False)
        cloud.network.register("smonitor", audit.app)
        sid = clients["bob"].post(
            MONITOR, {"server": {}}).json()["server"]["id"]
        cloud.nova.policy.set_rule("server:delete",
                                   "role:admin or role:member")
        response = clients["bob"].delete(f"{MONITOR}/{sid}")
        assert response.status_code == 502
        assert audit.log[-1].verdict == Verdict.PRE_VIOLATION
        assert audit.log[-1].security_requirements == ["2.3"]


class TestNovaStateProvider:
    def test_bindings(self, setup):
        cloud, monitor, clients = setup
        token = cloud.keystone.issue_token("bob", "bob-secret", "myProject")
        sid = clients["bob"].post(
            MONITOR, {"server": {"name": "x"}}).json()["server"]["id"]
        provider = NovaStateProvider(cloud.network, "myProject")
        bindings = provider.bindings(token, item_id=sid)
        assert bindings["project"]["id"] == "myProject"
        assert len(bindings["project"]["servers"]) == 1
        assert bindings["server"]["name"] == "x"
        assert bindings["user"]["roles"] == ["member"]

    def test_bindings_without_item(self, setup):
        cloud, monitor, clients = setup
        token = cloud.keystone.issue_token("carol", "carol-secret",
                                           "myProject")
        provider = NovaStateProvider(cloud.network, "myProject")
        bindings = provider.bindings(token)
        assert bindings["server"] == {}
        assert bindings["project"]["servers"] == []
