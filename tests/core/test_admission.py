"""Tests for deadline budgets, admission control, and the mode ladder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ResilientTransport, RetryPolicy
from repro.core.admission import (
    ARRIVAL_HEADER,
    MODE_GAUGE,
    MODES,
    AdmissionController,
    AdmissionOptions,
    DeadlineBudget,
    DeadlineOptions,
    DegradationLadder,
    DegradationOptions,
    parse_arrival,
)
from repro.core.resilience import TRANSPORT_ERROR_HEADER, ProbeFailure
from repro.core.scheduler import ProbeScheduler
from repro.errors import MonitorError
from repro.httpsim import Request, Response
from repro.obs import Observability
from repro.obs.clock import ManualClock

URL = "http://cinder/v3/myProject/volumes"


class TestDeadlineBudget:
    def test_remaining_counts_down_on_the_clock(self):
        clock = ManualClock()
        budget = DeadlineBudget(10.0, clock)
        assert budget.remaining() == pytest.approx(10.0)
        clock.advance(4.0)
        assert budget.remaining() == pytest.approx(6.0)
        assert not budget.exhausted()
        clock.advance(6.0)
        assert budget.exhausted()
        assert budget.remaining() == 0.0

    def test_remaining_never_negative(self):
        clock = ManualClock()
        budget = DeadlineBudget(1.0, clock)
        clock.advance(100.0)
        assert budget.remaining() == 0.0

    def test_start_override_makes_queue_wait_count(self):
        # The overload path starts the budget at the *scheduled arrival*:
        # a request that queued for 3s behind a backlog has already spent
        # that much of its budget when the monitor first sees it.
        clock = ManualClock(start=5.0)
        budget = DeadlineBudget(4.0, clock, start=2.0)
        assert budget.remaining() == pytest.approx(1.0)

    def test_allows_checks_the_candidate_delay(self):
        clock = ManualClock()
        budget = DeadlineBudget(1.0, clock)
        assert budget.allows(0.5)
        assert budget.allows(1.0)
        assert not budget.allows(1.5)

    def test_explicit_now_avoids_clock_reads(self):
        reads = []

        def counting_clock():
            reads.append(1)
            return 0.0

        budget = DeadlineBudget(5.0, counting_clock)
        reads.clear()
        assert budget.remaining(now=1.0) == pytest.approx(4.0)
        assert not budget.exhausted(now=1.0)
        assert budget.allows(2.0, now=1.0)
        assert reads == []

    def test_rejects_non_positive_timeout(self):
        clock = ManualClock()
        with pytest.raises(MonitorError):
            DeadlineBudget(0.0, clock)
        with pytest.raises(MonitorError):
            DeadlineBudget(-1.0, clock)

    def test_options_build_a_budget(self):
        clock = ManualClock()
        budget = DeadlineOptions(timeout=2.5).budget(clock, start=1.0)
        assert budget.timeout == 2.5
        assert budget.deadline == pytest.approx(3.5)


class TestAdmissionController:
    def test_admits_below_the_soft_limit(self):
        controller = AdmissionController(max_inflight=2, queue_depth=1)
        assert controller.admit() == AdmissionController.ADMIT
        assert controller.admit() == AdmissionController.ADMIT

    def test_queues_between_soft_and_hard_limits(self):
        controller = AdmissionController(max_inflight=1, queue_depth=2)
        assert controller.admit() == AdmissionController.ADMIT
        assert controller.admit() == AdmissionController.QUEUED
        assert controller.admit() == AdmissionController.QUEUED
        assert controller.admit() == AdmissionController.SHED

    def test_release_frees_a_slot(self):
        controller = AdmissionController(max_inflight=1, queue_depth=0)
        assert controller.admit() == AdmissionController.ADMIT
        assert controller.admit() == AdmissionController.SHED
        controller.release()
        assert controller.admit() == AdmissionController.ADMIT

    def test_shed_requests_hold_no_slot(self):
        controller = AdmissionController(max_inflight=1, queue_depth=0)
        controller.admit()
        for _ in range(5):
            controller.admit()
        assert controller.stats()["in_flight"] == 1

    def test_virtual_lag_sheds_past_queue_seconds(self):
        controller = AdmissionController(queue_seconds=0.5)
        assert controller.admit(now=10.0, scheduled_at=9.8) \
            == AdmissionController.ADMIT
        assert controller.admit(now=10.0, scheduled_at=9.0) \
            == AdmissionController.SHED
        assert controller.stats()["last_lag"] == pytest.approx(1.0)

    def test_early_arrival_is_zero_lag(self):
        controller = AdmissionController(queue_seconds=0.0)
        assert controller.admit(now=1.0, scheduled_at=2.0) \
            == AdmissionController.ADMIT

    def test_stats_count_every_decision(self):
        controller = AdmissionController(max_inflight=1, queue_depth=1)
        controller.admit()
        controller.admit()
        controller.admit()
        stats = controller.stats()
        assert stats["admitted"] == 1
        assert stats["queued"] == 1
        assert stats["shed"] == 1
        assert stats["in_flight"] == 2

    def test_release_never_goes_negative(self):
        controller = AdmissionController()
        controller.release()
        assert controller.stats()["in_flight"] == 0

    def test_validation(self):
        with pytest.raises(MonitorError):
            AdmissionController(max_inflight=0)
        with pytest.raises(MonitorError):
            AdmissionController(queue_depth=-1)
        with pytest.raises(MonitorError):
            AdmissionController(queue_seconds=-0.1)

    def test_options_build(self):
        controller = AdmissionOptions(max_inflight=3, queue_depth=4,
                                      queue_seconds=2.0).build()
        assert controller.max_inflight == 3
        assert controller.queue_depth == 4
        assert controller.queue_seconds == 2.0


class TestDegradationLadder:
    def test_escalates_after_consecutive_pressure(self):
        ladder = DegradationLadder(escalate_after=2)
        assert ladder.observe(shed=True) == ("full", None)
        mode, transition = ladder.observe(shed=True)
        assert mode == "cached_only"
        assert transition == ("full", "cached_only")

    def test_pressure_streak_resets_on_calm(self):
        ladder = DegradationLadder(escalate_after=2, clear_after=10)
        ladder.observe(shed=True)
        ladder.observe(shed=False)
        ladder.observe(shed=True)
        assert ladder.mode == "full"

    def test_climbs_to_audit_only_and_stops(self):
        ladder = DegradationLadder(escalate_after=1)
        for _ in range(5):
            ladder.observe(shed=True)
        assert ladder.mode == "audit_only"

    def test_recovery_is_hysteretic_one_rung_at_a_time(self):
        ladder = DegradationLadder(escalate_after=1, clear_after=3)
        ladder.observe(shed=True)
        ladder.observe(shed=True)
        assert ladder.mode == "audit_only"
        ladder.observe(shed=False)
        ladder.observe(shed=False)
        assert ladder.mode == "audit_only"  # not yet: 2 < clear_after
        mode, transition = ladder.observe(shed=False)
        assert mode == "cached_only"
        assert transition == ("audit_only", "cached_only")
        for _ in range(3):
            mode, _ = ladder.observe(shed=False)
        assert mode == "full"

    def test_critical_alarm_counts_as_pressure_when_enabled(self):
        ladder = DegradationLadder(escalate_after=1, alarm_escalation=True)
        ladder.observe(shed=False, severity="critical")
        assert ladder.mode == "cached_only"

    def test_alarm_escalation_can_be_disabled(self):
        ladder = DegradationLadder(escalate_after=1, alarm_escalation=False)
        ladder.observe(shed=False, severity="critical")
        assert ladder.mode == "full"

    def test_warn_severity_is_not_pressure(self):
        ladder = DegradationLadder(escalate_after=1, alarm_escalation=True)
        ladder.observe(shed=False, severity="warn")
        assert ladder.mode == "full"

    def test_transitions_history_and_stats(self):
        ladder = DegradationLadder(escalate_after=1, clear_after=1)
        ladder.observe(shed=True)
        ladder.observe(shed=False)
        assert ladder.transitions == [("full", "cached_only"),
                                      ("cached_only", "full")]
        stats = ladder.stats()
        assert stats["mode"] == "full"
        assert stats["transitions"] == [["full", "cached_only"],
                                        ["cached_only", "full"]]

    def test_validation(self):
        with pytest.raises(MonitorError):
            DegradationLadder(escalate_after=0)
        with pytest.raises(MonitorError):
            DegradationLadder(clear_after=0)

    def test_options_build(self):
        ladder = DegradationOptions(escalate_after=2, clear_after=5,
                                    alarm_escalation=False).build()
        assert ladder.escalate_after == 2
        assert ladder.clear_after == 5
        assert ladder.alarm_escalation is False

    def test_mode_gauge_encoding_matches_the_modes(self):
        assert MODES == ("full", "cached_only", "audit_only")
        assert [MODE_GAUGE[mode] for mode in MODES] == [0, 1, 2]


class TestParseArrival:
    def test_reads_the_stamped_header(self):
        request = Request("GET", URL, headers={ARRIVAL_HEADER: "12.5"})
        assert parse_arrival(request) == 12.5

    def test_missing_header_is_none(self):
        assert parse_arrival(Request("GET", URL)) is None

    def test_malformed_header_is_none_not_an_error(self):
        request = Request("GET", URL, headers={ARRIVAL_HEADER: "soon"})
        assert parse_arrival(request) is None


class _AlwaysFailing:
    """A substrate that 503s every send (and counts them)."""

    def __init__(self):
        self.sends = 0

    def send(self, request):
        self.sends += 1
        return Response.error(503, "overloaded")


def _transport(network, max_attempts=5):
    obs = Observability(clock=ManualClock())
    policy = RetryPolicy(max_attempts=max_attempts, base_delay=0.05,
                         multiplier=2.0, max_delay=2.0, jitter=0.1,
                         seed=11)
    transport = ResilientTransport(network, policy=policy,
                                   failure_threshold=10 ** 6,
                                   observability=obs)
    return transport, obs.clock


class TestTransportBudget:
    def test_first_attempt_always_runs_even_on_a_dead_budget(self):
        network = _AlwaysFailing()
        transport, clock = _transport(network)
        budget = DeadlineBudget(0.001, clock)
        clock.advance(1.0)  # exhaust before the send
        response = transport.send(Request("GET", URL), budget=budget)
        assert network.sends == 1
        assert response.headers.get(TRANSPORT_ERROR_HEADER) \
            == "deadline-exceeded"

    def test_generous_budget_changes_nothing(self):
        network = _AlwaysFailing()
        transport, clock = _transport(network, max_attempts=3)
        response = transport.send(Request("GET", URL),
                                  budget=DeadlineBudget(10 ** 6, clock))
        assert network.sends == 3
        assert response.headers.get(TRANSPORT_ERROR_HEADER) \
            == "retries-exhausted"

    @settings(max_examples=40, deadline=None)
    @given(timeout=st.floats(min_value=0.001, max_value=10.0,
                             allow_nan=False, allow_infinity=False))
    def test_backoff_never_sleeps_past_the_deadline(self, timeout):
        # The property the transport guarantees: with a ManualClock the
        # only time that passes is backoff sleeps, and every sleep is
        # pre-checked against the remaining budget -- so total elapsed
        # virtual time can never exceed the timeout.
        network = _AlwaysFailing()
        transport, clock = _transport(network, max_attempts=8)
        start = clock.now
        transport.send(Request("GET", URL),
                       budget=DeadlineBudget(timeout, clock))
        assert clock.now - start <= timeout + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(small=st.floats(min_value=0.001, max_value=5.0,
                           allow_nan=False, allow_infinity=False),
           extra=st.floats(min_value=0.0, max_value=5.0,
                           allow_nan=False, allow_infinity=False))
    def test_attempts_are_monotone_in_the_budget(self, small, extra):
        # More budget can only buy more attempts, never fewer: the retry
        # ladder is deterministic (seeded jitter, same key), so the
        # attempt count is a monotone function of the timeout.
        def attempts_with(timeout):
            network = _AlwaysFailing()
            transport, clock = _transport(network, max_attempts=8)
            transport.send(Request("GET", URL),
                           budget=DeadlineBudget(timeout, clock))
            return network.sends

        assert attempts_with(small) <= attempts_with(small + extra)


class TestSchedulerAbandonment:
    def test_serial_abandons_once_the_budget_dies(self):
        clock = ManualClock()
        budget = DeadlineBudget(1.0, clock)
        scheduler = ProbeScheduler(width=1)
        calls = []

        def probe_then_kill_budget():
            calls.append("ran")
            clock.advance(2.0)
            return "bound"

        outcomes = scheduler.map([probe_then_kill_budget, lambda: "late"],
                                 budget=budget)
        assert calls == ["ran"]  # the second task never ran
        assert outcomes[0].value == "bound"
        assert isinstance(outcomes[1].error, ProbeFailure)
        assert "deadline exceeded" in str(outcomes[1].error)

    def test_concurrent_abandons_the_whole_phase_at_submission(self):
        clock = ManualClock()
        budget = DeadlineBudget(1.0, clock)
        clock.advance(2.0)
        with ProbeScheduler(width=4) as scheduler:
            outcomes = scheduler.map([lambda: "a", lambda: "b",
                                      lambda: "c"], budget=budget)
        assert all(isinstance(outcome.error, ProbeFailure)
                   for outcome in outcomes)
        assert scheduler.dispatched_count == 0

    def test_live_budget_runs_everything(self):
        clock = ManualClock()
        budget = DeadlineBudget(100.0, clock)
        scheduler = ProbeScheduler(width=1)
        outcomes = scheduler.map([lambda: 1, lambda: 2], budget=budget)
        assert [outcome.value for outcome in outcomes] == [1, 2]
