"""Tests for the contract generator (paper Section V, Listing 1)."""

import pytest

from repro.errors import GenerationError
from repro.core import (
    ContractGenerator,
    cinder_behavior_model,
    cinder_resource_model,
)
from repro.ocl import Context, Snapshot, collect_pre_expressions, parse
from repro.ocl.nodes import Binary, Pre


@pytest.fixture(scope="module")
def generator():
    return ContractGenerator(cinder_behavior_model(), cinder_resource_model())


@pytest.fixture(scope="module")
def delete_contract(generator):
    return generator.for_trigger("DELETE(volume)")


def state(volumes, quota, status="available", roles=("admin",)):
    """Concrete probe-state bindings for contract evaluation."""
    return {
        "project": {"id": "myProject",
                    "volumes": [{"id": f"v{i}"} for i in range(volumes)]},
        "quota_sets": {"volumes": quota},
        "volume": {"id": "v0", "status": status},
        "user": {"roles": list(roles)},
    }


class TestListing1Structure:
    """The DELETE(volume) contract must have the Listing 1 shape."""

    def test_three_disjuncts(self, delete_contract):
        assert len(delete_contract.cases) == 3

    def test_precondition_is_disjunction(self, delete_contract):
        node = delete_contract.precondition
        # or(or(a, b), c)
        assert isinstance(node, Binary)
        assert node.operator == "or"
        assert node.left.operator == "or"

    def test_postcondition_is_conjunction_of_implications(
            self, delete_contract):
        node = delete_contract.postcondition
        assert node.operator == "and"
        implications = [delete_contract.cases[0].implication,
                        delete_contract.cases[1].implication,
                        delete_contract.cases[2].implication]
        for implication in implications:
            assert implication.operator == "implies"
            assert isinstance(implication.left, Pre)

    def test_post_uses_pre_old_values(self, delete_contract):
        pres = collect_pre_expressions(delete_contract.postcondition)
        # one antecedent per case plus pre(size()) in each effect
        assert len(pres) >= 3

    def test_security_requirements(self, delete_contract):
        assert delete_contract.security_requirements == ["1.4"]

    def test_uri_from_resource_model(self, delete_contract):
        assert delete_contract.uri == "/{project_id}/volumes/{volume_id}"

    def test_render_layout(self, delete_contract):
        text = delete_contract.render()
        assert text.startswith(
            "PreCondition(DELETE(/{project_id}/volumes/{volume_id})):")
        assert "PostCondition(DELETE(" in text
        assert text.count(" or\n") == 2   # three pre disjuncts
        assert text.count(" and\n") == 2  # three post implications
        assert "pre(" in text

    def test_rendered_contract_parses_back(self, delete_contract):
        parse(delete_contract.precondition_text())
        parse(delete_contract.postcondition_text())


class TestPreconditionEvaluation:
    def test_admin_detached_volume_allows_delete(self, delete_contract):
        context = Context(state(volumes=2, quota=5), strict=False)
        assert delete_contract.check_pre(context) is True

    def test_in_use_volume_blocks_delete(self, delete_contract):
        context = Context(state(volumes=2, quota=5, status="in-use"),
                          strict=False)
        assert delete_contract.check_pre(context) is False

    def test_non_admin_blocks_delete(self, delete_contract):
        context = Context(state(volumes=2, quota=5, roles=("member",)),
                          strict=False)
        assert delete_contract.check_pre(context) is False

    def test_no_volumes_blocks_delete(self, delete_contract):
        context = Context(state(volumes=0, quota=5), strict=False)
        assert delete_contract.check_pre(context) is False

    def test_full_quota_case_applies(self, delete_contract):
        context = Context(state(volumes=5, quota=5), strict=False)
        applicable = delete_contract.applicable_cases(context)
        assert len(applicable) == 1
        assert applicable[0].transition.source == \
            "project_with_volume_and_full_quota"

    def test_single_volume_case(self, delete_contract):
        context = Context(state(volumes=1, quota=5), strict=False)
        applicable = delete_contract.applicable_cases(context)
        assert [case.transition.target for case in applicable] == [
            "project_with_no_volume"]


class TestPostconditionEvaluation:
    def test_successful_delete_satisfies_post(self, delete_contract):
        before = Context(state(volumes=2, quota=5), strict=False)
        snapshot = delete_contract.snapshot(before)
        after = Context(state(volumes=1, quota=5), strict=False)
        assert delete_contract.check_post(after, snapshot) is True

    def test_unchanged_state_violates_post(self, delete_contract):
        before = Context(state(volumes=2, quota=5), strict=False)
        snapshot = delete_contract.snapshot(before)
        assert delete_contract.check_post(before, snapshot) is False

    def test_grown_state_violates_post(self, delete_contract):
        before = Context(state(volumes=2, quota=5), strict=False)
        snapshot = delete_contract.snapshot(before)
        after = Context(state(volumes=3, quota=5), strict=False)
        assert delete_contract.check_post(after, snapshot) is False

    def test_vacuous_post_when_pre_false(self, delete_contract):
        # If no case's pre held, every implication is vacuously true.
        before = Context(state(volumes=0, quota=5), strict=False)
        snapshot = delete_contract.snapshot(before)
        assert delete_contract.check_post(before, snapshot) is True

    def test_snapshot_is_small(self, delete_contract):
        # The paper: "usually this only requires a few bits of storage".
        before = Context(state(volumes=2, quota=5), strict=False)
        snapshot = delete_contract.snapshot(before)
        assert snapshot.storage_bytes <= 64


class TestPostContract:
    def test_post_volumes_contract(self, generator):
        contract = generator.for_trigger("POST(volumes)")
        assert len(contract.cases) == 4
        assert contract.security_requirements == ["1.3"]
        assert contract.uri == "/{project_id}/volumes"

    def test_post_create_satisfies_post(self, generator):
        contract = generator.for_trigger("POST(volumes)")
        before = Context(state(volumes=1, quota=5, roles=("member",)),
                         strict=False)
        assert contract.check_pre(before) is True
        snapshot = contract.snapshot(before)
        after = Context(state(volumes=2, quota=5, roles=("member",)),
                        strict=False)
        assert contract.check_post(after, snapshot) is True

    def test_post_blocked_at_quota(self, generator):
        contract = generator.for_trigger("POST(volumes)")
        before = Context(state(volumes=5, quota=5), strict=False)
        assert contract.check_pre(before) is False

    def test_get_contracts_exist(self, generator):
        contracts = generator.all_contracts()
        names = {str(trigger) for trigger in contracts}
        assert {"GET(volumes)", "GET(volume)", "PUT(volume)",
                "POST(volumes)", "DELETE(volume)"} == names

    def test_unknown_trigger_raises(self, generator):
        with pytest.raises(GenerationError):
            generator.for_trigger("PATCH(volume)")

    def test_contract_without_diagram_has_default_uri(self):
        generator = ContractGenerator(cinder_behavior_model())
        contract = generator.for_trigger("DELETE(volume)")
        assert contract.uri == "/volume"
