"""Concurrency stress: one shard under N racing threads stays coherent.

A fleet shard is a full monitor -- single-flight probe cache, wide-event
ring, trace ring, metrics -- and under fan-out its internals run on pool
threads even while dispatcher threads race on the outside.  These tests
hammer each shared structure from many threads released by a barrier
(maximum simultaneous contention, deterministically arranged -- no
sleeps, no timing luck) and assert the invariants that corruption would
break: exactly-once computation, gap-free sequence numbers, bounded
rings that keep the most recent entries.
"""

import threading
from collections import Counter

from repro.core import MonitorFleet, SingleFlight
from repro.core.fleet import tenant_from_token
from repro.httpsim import Request
from repro.obs import Observability
from repro.obs.clock import ManualClock
from repro.obs.events import EventLog
from repro.obs.tracing import Tracer
from repro.validation.chaos import fleet_setup

THREADS = 8
ROUNDS = 25


def run_racing(worker, threads=THREADS):
    """Start *threads* copies of *worker* behind one barrier; join all."""
    barrier = threading.Barrier(threads)
    errors = []

    def wrapped(index):
        try:
            barrier.wait(timeout=10)
            worker(index)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    pool = [threading.Thread(target=wrapped, args=(index,))
            for index in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=30)
    assert not errors, f"racing workers raised: {errors!r}"


class TestSingleFlightUnderContention:
    def test_each_key_is_computed_exactly_once(self):
        cache = SingleFlight()
        computed = Counter()
        computed_lock = threading.Lock()
        results = {}
        results_lock = threading.Lock()

        def supplier_for(key):
            def supplier():
                with computed_lock:
                    computed[key] += 1
                return f"value-{key}"
            return supplier

        def worker(index):
            # Every thread asks for every key: massive key contention.
            for round_number in range(ROUNDS):
                key = f"probe-{round_number % 5}"
                value = cache.do(key, supplier_for(key))
                with results_lock:
                    results.setdefault(key, set()).add(value)

        run_racing(worker)
        # 5 distinct keys, each computed once, each answer agreed on.
        assert set(computed.values()) == {1}
        assert len(computed) == 5
        for key, values in results.items():
            assert values == {f"value-{key}"}
        assert cache.shared_count == THREADS * ROUNDS - 5


class TestEventRingUnderContention:
    def test_sequence_numbers_stay_gap_free_and_ring_bounded(self):
        log = EventLog(clock=ManualClock(), keep=64)

        def worker(index):
            for round_number in range(ROUNDS):
                log.emit("stress", thread=index, round=round_number)

        run_racing(worker)
        total = THREADS * ROUNDS
        assert log.emitted_count == total
        retained = list(log.events)
        assert len(retained) == 64
        seqs = [record.seq for record in retained]
        # The ring keeps exactly the most recent contiguous window.
        assert seqs == list(range(total - 63, total + 1))

    def test_thread_local_correlation_survives_the_race(self):
        log = EventLog(clock=ManualClock(), keep=THREADS * ROUNDS)

        def worker(index):
            with log.correlate(f"t-{index:06d}"):
                for round_number in range(ROUNDS):
                    log.emit("stress", thread=index)

        run_racing(worker)
        for index in range(THREADS):
            mine = log.filter(trace_id=f"t-{index:06d}")
            assert len(mine) == ROUNDS
            assert all(record.get("thread") == index for record in mine)


class TestTracerUnderContention:
    def test_trace_ids_are_unique_and_rings_bounded(self):
        tracer = Tracer(clock=ManualClock(), keep=32)
        minted = []
        minted_lock = threading.Lock()

        def worker(index):
            for round_number in range(ROUNDS):
                trace = tracer.begin("stress")
                with trace.span("probe"):
                    pass
                tracer.finish(trace)
                with minted_lock:
                    minted.append(trace.trace_id)

        run_racing(worker)
        total = THREADS * ROUNDS
        assert tracer.started_count == total
        assert len(set(minted)) == total
        assert len(tracer.finished) == 32
        # Every retained trace is still reachable through the id index.
        for trace in tracer.finished:
            assert tracer.find(trace.trace_id) is trace


class TestShardUnderContention:
    def test_racing_dispatchers_never_corrupt_a_fanout_shard(self):
        # One shard, fan-out inside it, GET-only traffic from racing
        # threads: every request must produce exactly one verdict, the
        # shared allocator must mint gap-free trace ids, and the event
        # ring must stay sequentially coherent.
        cloud, fleet = fleet_setup(shards=1, fanout=4)
        tokens = sorted(cloud.paper_tokens().values())
        try:
            def worker(index):
                token = tokens[index % len(tokens)]
                for _ in range(ROUNDS):
                    response = fleet.handle(Request(
                        "GET", "http://cmonitor/cmonitor/volumes",
                        headers={"X-Auth-Token": token}))
                    assert response.status_code == 200

            run_racing(worker)
        finally:
            fleet.close()

        total = THREADS * ROUNDS
        shard = fleet.shards[0]
        assert fleet.dispatched == [total]
        assert len(fleet.log) == total
        correlation_ids = [verdict.correlation_id
                           for verdict in fleet.log]
        assert len(set(correlation_ids)) == total
        events = shard.obs.events
        assert events.emitted_count >= total
        retained_seqs = [record.seq for record in events.events]
        assert retained_seqs == sorted(retained_seqs)
        assert len(retained_seqs) == len(set(retained_seqs))
        # All verdicts from identical GETs agree.
        assert {verdict.verdict for verdict in fleet.log} == {"valid"}
