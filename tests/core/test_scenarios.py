"""Tests for the scenario registry behind ``CloudMonitor.for_service``."""

import pytest

from repro.cloud import PrivateCloud
from repro.core import (
    CloudMonitor,
    Verdict,
    build_scenario,
    register_scenario,
    scenario_names,
)
from repro.errors import MonitorError


class TestRegistry:
    def test_shipped_scenarios_are_registered(self):
        assert {"cinder", "nova", "keystone"} <= set(scenario_names())

    def test_unknown_scenario_names_the_known_ones(self):
        cloud = PrivateCloud.paper_setup()
        with pytest.raises(MonitorError, match="cinder"):
            build_scenario("swift", cloud.network, "myProject")

    def test_lookup_is_case_insensitive(self):
        cloud = PrivateCloud.paper_setup()
        monitor = CloudMonitor.for_service("CINDER", cloud.network,
                                           "myProject")
        assert isinstance(monitor, CloudMonitor)

    def test_reregistering_requires_replace(self):
        def builder(network, project_id, **kwargs):
            raise AssertionError("never built")

        with pytest.raises(MonitorError, match="already registered"):
            register_scenario("cinder", builder)

    def test_custom_scenarios_can_register_and_build(self):
        built = []

        def builder(network, project_id, **kwargs):
            built.append((project_id, kwargs))
            return CloudMonitor.for_service("cinder", network, project_id,
                                            **kwargs)

        register_scenario("custom-test", builder)
        try:
            cloud = PrivateCloud.paper_setup()
            monitor = CloudMonitor.for_service(
                "custom-test", cloud.network, "myProject", enforcing=False)
            assert built == [("myProject", {"enforcing": False})]
            assert monitor.enforcing is False
        finally:
            # Leave the registry as the next test expects it.
            register_scenario("custom-test",
                              lambda *a, **k: None, replace=True)


class TestForCinderAlias:
    def test_for_cinder_warns_but_builds_the_same_monitor(self):
        cloud_old = PrivateCloud.paper_setup(volume_quota=3)
        cloud_new = PrivateCloud.paper_setup(volume_quota=3)
        with pytest.warns(DeprecationWarning, match="for_service"):
            old = CloudMonitor.for_cinder(cloud_old.network, "myProject",
                                          enforcing=True)
        new = CloudMonitor.for_service("cinder", cloud_new.network,
                                       "myProject", enforcing=True)
        assert sorted(map(str, old.contracts)) == \
            sorted(map(str, new.contracts))
        assert [op.monitor_path for op in old.operations] == \
            [op.monitor_path for op in new.operations]
        assert type(old.provider) is type(new.provider)

    def test_alias_and_factory_produce_identical_verdict_streams(self):
        streams = []
        for use_alias in (True, False):
            cloud = PrivateCloud.paper_setup(volume_quota=3)
            if use_alias:
                with pytest.warns(DeprecationWarning):
                    monitor = CloudMonitor.for_cinder(
                        cloud.network, "myProject", enforcing=True)
            else:
                monitor = CloudMonitor.for_service(
                    "cinder", cloud.network, "myProject", enforcing=True)
            cloud.network.register("cmonitor", monitor.app)
            token = cloud.keystone.issue_token("alice", "alice-secret",
                                               "myProject")
            client = cloud.client(token)
            client.get("http://cmonitor/cmonitor/volumes")
            client.post("http://cmonitor/cmonitor/volumes",
                        {"volume": {"name": "v", "size": 1}})
            streams.append([
                {key: value for key, value in verdict.to_dict().items()
                 if key != "correlation_id"}
                for verdict in monitor.log])
        assert streams[0] == streams[1]
        assert streams[0][0]["verdict"] == Verdict.VALID


class TestOtherServices:
    def test_nova_builds_through_for_service(self):
        cloud = PrivateCloud.paper_setup()
        monitor = CloudMonitor.for_service("nova", cloud.network,
                                           "myProject", enforcing=False)
        assert monitor.provider.roots == ("project", "server", "user")

    def test_keystone_builds_through_for_service(self):
        cloud = PrivateCloud.paper_setup()
        monitor = CloudMonitor.for_service("keystone", cloud.network,
                                           "myProject")
        assert monitor.provider.roots == ("projects", "project", "user")
