"""Parity battery: fan-out and fleet must never change the verdicts.

The concurrent probe scheduler and the sharded fleet are performance
structures only.  For any seeded workload -- clean or faulted -- the
verdict stream (canonical JSONL rows, so every field including the
correlation id participates) must be byte-identical across:

* the serial single monitor (the reference),
* a single monitor with concurrent probe fan-out,
* a sharded fleet of serial monitors,
* a sharded fleet with fan-out inside every shard.

Faulted legs reuse the chaos programs: fail-once (fully recoverable --
the stream must also equal the clean one), the keyed flaky program
(order-independent by construction; some verdicts legitimately go
indeterminate but all four legs must agree), and a dead substrate
(everything degrades to indeterminate, no exceptions).
"""

import json

import pytest

from repro.validation import (
    flaky_program,
    recoverable_program,
    run_fleet_leg,
    run_leg,
    unrecoverable_program,
)

COUNT = 24
SEED = 7
SHARDS = 3
FANOUT = 4


def legs(fault_factory=None):
    """The four execution shapes over one identical seeded workload."""
    return {
        "serial": run_leg(COUNT, SEED, fault_factory),
        "fanout": run_leg(COUNT, SEED, fault_factory, fanout=FANOUT),
        "fleet": run_fleet_leg(COUNT, SEED, fault_factory, shards=SHARDS),
        "fleet+fanout": run_fleet_leg(COUNT, SEED, fault_factory,
                                      shards=SHARDS, fanout=FANOUT),
    }


def assert_all_identical(runs):
    reference = runs["serial"]
    assert reference.rows, "the workload must produce verdicts"
    for name, leg in runs.items():
        assert leg.rows == reference.rows, (
            f"{name} diverged from the serial verdict stream")
        assert leg.digest() == reference.digest()
    return reference


class TestCleanParity:
    def test_all_shapes_produce_identical_verdict_streams(self):
        runs = legs()
        reference = assert_all_identical(runs)
        assert len(reference.rows) == COUNT

    def test_fanout_actually_engaged(self):
        # Guard against vacuous parity: the concurrent leg must really
        # have sent probes from pool threads (same total probe count).
        serial = run_leg(COUNT, SEED)
        fanout = run_leg(COUNT, SEED, fanout=FANOUT)
        assert fanout.probe_count == serial.probe_count
        assert fanout.rows == serial.rows


class TestFaultedParity:
    def test_fail_once_faults_are_invisible_everywhere(self):
        clean = run_leg(COUNT, SEED)
        runs = legs(recoverable_program)
        reference = assert_all_identical(runs)
        # Fully recoverable: the faulted stream equals the clean stream,
        # and retries were genuinely absorbed (not just never needed).
        assert reference.rows == clean.rows
        assert runs["serial"].retries > 0
        assert runs["fleet+fanout"].retries > 0

    def test_keyed_flaky_faults_keep_all_shapes_in_agreement(self):
        runs = legs(flaky_program)
        reference = assert_all_identical(runs)
        # The flaky program exhausts some retries: the stream is allowed
        # to contain indeterminates, but every shape sees the same ones.
        verdicts = [json.loads(row)["verdict"] for row in reference.rows]
        assert len(verdicts) == COUNT

    def test_dead_substrate_degrades_every_shape_to_indeterminate(self):
        for name, leg in legs(unrecoverable_program).items():
            verdicts = {json.loads(row)["verdict"] for row in leg.rows}
            assert verdicts == {"indeterminate"}, (
                f"{name} produced non-indeterminate verdicts under a "
                f"dead substrate: {sorted(verdicts)}")


class TestParityDiagnostics:
    def test_verdict_rows_carry_contiguous_trace_ids(self):
        # The fleet shares one trace-id allocator across shards; the
        # merged stream must keep the single gap-free t-NNNNNN sequence
        # a serial monitor would have minted.
        leg = run_fleet_leg(COUNT, SEED, shards=SHARDS)
        trace_ids = [json.loads(row)["correlation_id"]
                     for row in leg.rows]
        expected = [f"t-{n:06d}" for n in range(1, COUNT + 1)]
        assert trace_ids == expected

    def test_digest_is_deterministic_across_runs(self):
        assert run_leg(COUNT, SEED).digest() == \
            run_leg(COUNT, SEED).digest()
