"""Tests for demand-driven probe planning and the forwarding-path fixes."""

import pytest

from repro.cloud import PrivateCloud
from repro.core import CloudMonitor, ProbePlan, Verdict
from repro.core.monitor import MonitoredOperation
from repro.core.planning import PROBE_ROOTS
from repro.httpsim import Request
from repro.obs import Observability
from repro.uml import Trigger
from repro.validation import TestOracle, default_setup, standard_battery
from repro.workloads import WorkloadRunner, make_workload

MONITOR = "http://cmonitor/cmonitor/volumes"


@pytest.fixture()
def setup():
    cloud = PrivateCloud.paper_setup(volume_quota=3)
    tokens = cloud.paper_tokens()
    monitor = CloudMonitor.for_cinder(cloud.network, "myProject",
                                      enforcing=True)
    cloud.network.register("cmonitor", monitor.app)
    clients = {name: cloud.client(token) for name, token in tokens.items()}
    return cloud, monitor, clients


class TestProbePlanAnalysis:
    def test_plans_are_memoized_per_root_set(self):
        _, monitor = default_setup()
        contract = next(iter(monitor.contracts.values()))
        assert contract.probe_plan() is contract.probe_plan()
        assert contract.probe_plan(PROBE_ROOTS) is \
            contract.probe_plan(PROBE_ROOTS)

    def test_collection_get_pre_phase_skips_volume(self):
        _, monitor = default_setup()
        contract = monitor.contracts[Trigger("GET", "volumes")]
        plan = contract.probe_plan()
        assert "volume" not in plan.pre_phase_roots
        assert {"project", "quota_sets", "user"} <= plan.pre_phase_roots

    def test_post_phase_skips_snapshot_only_roots(self):
        # DELETE(volume): `volume.status` and `user.roles` appear only in
        # the pre()-wrapped antecedents; the target invariants and effects
        # read project/quota_sets against the post-state.
        _, monitor = default_setup()
        plan = monitor.contracts[Trigger("DELETE", "volume")].probe_plan()
        assert "volume" in plan.pre_phase_roots
        assert "user" in plan.pre_phase_roots
        assert plan.post_phase_roots == {"project", "quota_sets"}

    def test_describe_is_stable(self):
        plan = ProbePlan(["user"], ["project"], ["project"])
        assert plan.describe() == "pre:project,user|post:project"


class TestPartialBindings:
    def test_bindings_default_covers_every_root(self, setup):
        cloud, monitor, _ = setup
        token = cloud.keystone.issue_token("alice", "alice-secret",
                                           "myProject")
        bindings = monitor.provider.bindings(token)
        assert set(bindings) == set(PROBE_ROOTS)

    def test_bindings_with_roots_probes_only_those(self, setup):
        cloud, monitor, _ = setup
        token = cloud.keystone.issue_token("alice", "alice-secret",
                                           "myProject")
        before = monitor.provider.probe_count
        bindings = monitor.provider.bindings(token, roots={"quota_sets"})
        assert set(bindings) == {"quota_sets"}
        assert monitor.provider.probe_count == before + 1

    def test_skipped_probes_are_counted(self, setup):
        cloud, monitor, _ = setup
        obs = monitor.obs
        token = cloud.keystone.issue_token("alice", "alice-secret",
                                           "myProject")
        monitor.provider.bindings(token, roots={"quota_sets"})
        counter = obs.metrics.counter(
            "monitor_probes_skipped_total",
            "GET probes the demand-driven plan proved unnecessary")
        assert counter.value >= 3  # project (2) + user (1)


class TestPlannedVersusUnplanned:
    """Planning must change the probe bill, never the verdicts."""

    @staticmethod
    def _run(probe_planning):
        workload = make_workload(80, seed=7)
        cloud, monitor = default_setup(probe_planning=probe_planning)
        runner = WorkloadRunner(cloud, monitor)
        histogram = runner.execute(workload, monitored=True)
        rows = [v.to_dict() for v in monitor.log]
        coverage = {rid: (r.exercised, r.passed, r.failed)
                    for rid, r in monitor.coverage.records.items()}
        return histogram, rows, coverage, monitor.provider.probe_count

    def test_verdicts_and_coverage_identical_probes_fewer(self):
        planned = self._run(True)
        unplanned = self._run(False)
        assert planned[0] == unplanned[0]          # status histogram
        assert planned[1] == unplanned[1]          # full audit-log rows
        assert planned[2] == unplanned[2]          # coverage counters
        assert planned[3] < unplanned[3]           # strictly fewer probes

    def test_battery_verdicts_identical(self):
        def run(probe_planning):
            cloud, monitor = default_setup(probe_planning=probe_planning)
            oracle = TestOracle(cloud, monitor)
            results = oracle.run(standard_battery())
            return ([(name, response.status_code)
                     for name, response in results],
                    [v.to_dict() for v in monitor.log])

        assert run(True) == run(False)

    def test_planned_trace_carries_plan_tag(self, setup):
        cloud, monitor, clients = setup
        clients["alice"].get(MONITOR)
        trace = monitor.obs.tracer.finished[-1]
        assert "probe_plan" in trace.tags
        assert trace.tags["probe_plan"].startswith("pre:")


class TestProbeCostTable:
    """The planner's cost table matches what probing actually costs."""

    def test_costs_pin_real_probe_count_deltas(self):
        from repro.core import PROBE_COSTS, CloudStateProvider

        cloud = PrivateCloud.paper_setup(volume_quota=3)
        token = cloud.keystone.issue_token("alice", "alice-secret",
                                           "myProject")
        created = cloud.client(token).post(
            "http://cinder/v3/myProject/volumes",
            {"volume": {"name": "seed", "size": 1}})
        volume_id = created.json()["volume"]["id"]

        provider = CloudStateProvider(cloud.network, "myProject")
        for root, cost in sorted(PROBE_COSTS.items()):
            before = provider.probe_count
            provider.bindings(token, item_id=volume_id, roots=[root])
            actual = provider.probe_count - before
            assert actual == cost, (
                f"root {root!r}: PROBE_COSTS says {cost} GETs, "
                f"probing actually issued {actual}")

    def test_skipped_accounting_uses_the_table(self):
        from repro.core import PROBE_COSTS, CloudStateProvider
        from repro.obs import Observability

        cloud = PrivateCloud.paper_setup(volume_quota=3)
        token = cloud.keystone.issue_token("alice", "alice-secret",
                                           "myProject")
        obs = Observability()
        provider = CloudStateProvider(cloud.network, "myProject",
                                      observability=obs)
        provider.bindings(token, item_id="some-volume", roots=[])
        skipped = obs.metrics.counter_value("monitor_probes_skipped_total")
        assert skipped == sum(PROBE_COSTS.values())


class TestRootsKeywordIsMandatory:
    """``bindings(roots=...)`` is part of the provider contract now."""

    def test_provider_without_roots_keyword_breaks_loudly(self):
        from repro.core import CloudStateProvider

        class LegacyProvider(CloudStateProvider):
            def bindings(self, token, item_id=None):  # no roots kw
                return super().bindings(token, item_id)

        cloud = PrivateCloud.paper_setup(volume_quota=3)
        legacy = LegacyProvider(cloud.network, "myProject")
        token = cloud.keystone.issue_token("alice", "alice-secret",
                                           "myProject")
        with pytest.raises(TypeError):
            legacy.context(token, None, roots=None)


class TestQueryStringForwarding:
    """Regression: the incoming query string must reach the cloud."""

    def test_params_reach_the_cloud_application(self, setup):
        cloud, monitor, clients = setup
        seen = []

        def spy(request):
            seen.append((request.method, request.path, dict(request.params)))
            return None  # let the request through untouched

        cloud.network.inject_fault("cinder", spy)
        response = clients["alice"].get(MONITOR + "?limit=1&marker=abc")
        assert response.status_code == 200
        forwarded = [entry for entry in seen
                     if entry[2] == {"limit": "1", "marker": "abc"}]
        assert forwarded, f"no cinder request carried the params: {seen}"
        assert forwarded[0][0] == "GET"
        assert forwarded[0][1] == "/v3/myProject/volumes"

    def test_template_query_survives_param_merge(self):
        operation = MonitoredOperation(
            Trigger("GET", "volumes"), "cmonitor/volumes",
            "http://cinder/v3/p1/volumes?all_tenants=1")
        request = Request("GET", "http://cmonitor/cmonitor/volumes?limit=1")
        forwarded = Request("GET", operation.cloud_url({}),
                            body=request.body)
        forwarded.params.update(request.params)
        assert forwarded.params == {"all_tenants": "1", "limit": "1"}


class TestItemIdCapture:
    """Regression: multi-capture routes must bind the declared item id."""

    def test_item_capture_is_last_template_capture(self):
        operation = MonitoredOperation(
            Trigger("GET", "volume"),
            "cmonitor/<str:project_id>/volumes/<str:volume_id>",
            "http://cinder/v3/{project_id}/volumes/{volume_id}")
        assert operation.item_capture == "volume_id"

    def test_collection_route_has_no_item_capture(self):
        operation = MonitoredOperation(
            Trigger("GET", "volumes"), "cmonitor/volumes",
            "http://cinder/v3/p1/volumes")
        assert operation.item_capture is None

    def test_multi_capture_route_binds_the_right_resource(self, setup):
        cloud, monitor, clients = setup
        created = clients["alice"].post(MONITOR, {"volume": {"name": "m"}})
        volume_id = created.json()["volume"]["id"]

        operation = MonitoredOperation(
            Trigger("GET", "volume"),
            "cmonitor/<str:project_id>/volumes/<str:volume_id>",
            "http://cinder/v3/{project_id}/volumes/{volume_id}")
        token = cloud.keystone.issue_token("alice", "alice-secret",
                                           "myProject")
        request = Request(
            "GET",
            f"http://cmonitor/cmonitor/myProject/volumes/{volume_id}",
            headers={"X-Auth-Token": token})
        # Insertion order puts the scope capture first: the fragile
        # first-capture heuristic would probe "myProject" as the volume id
        # and block the request on `volume.id->size() = 1`.
        request.path_args = {"project_id": "myProject",
                             "volume_id": volume_id}
        response, verdict = monitor.monitor_request(operation, request)
        assert verdict.verdict == Verdict.VALID
        assert response.status_code == 200


class TestIdentityCachePoisoning:
    """Regression: mutating a returned identity must not poison the cache."""

    def test_mutating_returned_identity_is_harmless(self, setup):
        cloud, monitor, _ = setup
        provider = monitor.provider
        provider.cache_identity = True
        token = cloud.keystone.issue_token("carol", "carol-secret",
                                           "myProject")
        first = provider._identity(token)
        assert "proj_administrator" not in first["roles"]
        # A buggy (or malicious) caller escalates its own copy...
        first["roles"].append("proj_administrator")
        first["groups"].clear()
        # ...and later requests with the same token stay unaffected.
        second = provider._identity(token)
        assert "proj_administrator" not in second["roles"]
        assert second["groups"] != []

    def test_mutating_before_store_does_not_leak_either(self, setup):
        cloud, monitor, _ = setup
        provider = monitor.provider
        provider.cache_identity = True
        token = cloud.keystone.issue_token("bob", "bob-secret", "myProject")
        miss = provider._identity(token)     # populates the cache
        miss["roles"].append("proj_administrator")
        hit = provider._identity(token)      # served from the cache
        assert "proj_administrator" not in hit["roles"]
