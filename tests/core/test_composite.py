"""Tests for composing scenario monitors into one deployment."""

import pytest

from repro.cloud import PrivateCloud
from repro.core import CloudMonitor, CompositeMonitor, Verdict
from repro.core.nova_scenario import monitor_for_nova
from repro.errors import MonitorError


@pytest.fixture()
def setup():
    cloud = PrivateCloud.paper_setup()
    tokens = cloud.paper_tokens()
    cinder_monitor = CloudMonitor.for_cinder(cloud.network, "myProject",
                                             enforcing=True)
    nova_monitor = monitor_for_nova(cloud.network, "myProject",
                                    enforcing=True)
    composite = CompositeMonitor([cinder_monitor, nova_monitor])
    cloud.network.register("monitor", composite.app)
    clients = {name: cloud.client(token) for name, token in tokens.items()}
    return cloud, composite, cinder_monitor, nova_monitor, clients


class TestDispatch:
    def test_routes_to_cinder_scenario(self, setup):
        cloud, composite, cinder_monitor, nova_monitor, clients = setup
        response = clients["bob"].post("http://monitor/cmonitor/volumes",
                                       {"volume": {"name": "v"}})
        assert response.status_code == 202
        assert len(cinder_monitor.log) == 1
        assert nova_monitor.log == []

    def test_routes_to_nova_scenario(self, setup):
        cloud, composite, cinder_monitor, nova_monitor, clients = setup
        response = clients["bob"].post("http://monitor/smonitor/servers",
                                       {"server": {"name": "s"}})
        assert response.status_code == 202
        assert len(nova_monitor.log) == 1
        assert cinder_monitor.log == []

    def test_unknown_mount_is_404(self, setup):
        cloud, composite, _, _, clients = setup
        response = clients["bob"].get("http://monitor/xmonitor/things")
        assert response.status_code == 404

    def test_item_routes_dispatch(self, setup):
        cloud, composite, _, _, clients = setup
        vid = clients["bob"].post("http://monitor/cmonitor/volumes",
                                  {"volume": {}}).json()["volume"]["id"]
        response = clients["carol"].get(
            f"http://monitor/cmonitor/volumes/{vid}")
        assert response.status_code == 200


class TestMergedViews:
    def test_merged_log(self, setup):
        cloud, composite, _, _, clients = setup
        clients["bob"].post("http://monitor/cmonitor/volumes",
                            {"volume": {}})
        clients["bob"].post("http://monitor/smonitor/servers",
                            {"server": {}})
        operations = {str(verdict.trigger) for verdict in composite.log}
        assert operations == {"POST(volumes)", "POST(servers)"}

    def test_merged_violations(self, setup):
        cloud, composite, _, _, clients = setup
        clients["carol"].post("http://monitor/cmonitor/volumes",
                              {"volume": {}})  # 412 blocked, not violation
        assert composite.violations() == []

    def test_aggregate_coverage_spans_scenarios(self, setup):
        cloud, composite, _, _, clients = setup
        clients["bob"].post("http://monitor/cmonitor/volumes",
                            {"volume": {}})
        clients["carol"].get("http://monitor/smonitor/servers")
        coverage = composite.coverage()
        assert "1.3" in coverage.covered_ids()   # cinder POST
        assert "2.1" in coverage.covered_ids()   # nova GET
        assert "2.3" in coverage.uncovered_ids()

    def test_clear_logs(self, setup):
        cloud, composite, cinder_monitor, nova_monitor, clients = setup
        clients["bob"].post("http://monitor/cmonitor/volumes",
                            {"volume": {}})
        composite.clear_logs()
        assert composite.log == []
        assert cinder_monitor.log == []


class TestThreeScenarioDeployment:
    def test_cinder_nova_keystone_behind_one_endpoint(self):
        from repro.core.keystone_scenario import monitor_for_keystone

        cloud = PrivateCloud.paper_setup()
        tokens = cloud.paper_tokens()
        composite = CompositeMonitor([
            CloudMonitor.for_cinder(cloud.network, "myProject",
                                    enforcing=True),
            monitor_for_nova(cloud.network, "myProject", enforcing=True),
            monitor_for_keystone(cloud.network, "myProject",
                                 enforcing=True),
        ])
        cloud.network.register("monitor", composite.app)
        bob = cloud.client(tokens["bob"])
        alice = cloud.client(tokens["alice"])

        assert bob.post("http://monitor/cmonitor/volumes",
                        {"volume": {}}).status_code == 202
        assert bob.post("http://monitor/smonitor/servers",
                        {"server": {}}).status_code == 202
        assert alice.post("http://monitor/imonitor/projects",
                          {"project": {"name": "p2"}}).status_code == 201
        assert composite.violations() == []
        covered = composite.coverage().covered_ids()
        assert {"1.3", "2.2", "3.2"} <= set(covered)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(MonitorError):
            CompositeMonitor([])

    def test_clashing_mounts_rejected(self):
        cloud = PrivateCloud.paper_setup()
        first = CloudMonitor.for_cinder(cloud.network, "myProject")
        second = CloudMonitor.for_cinder(cloud.network, "myProject")
        with pytest.raises(MonitorError):
            CompositeMonitor([first, second])

    def test_single_monitor_composite(self):
        cloud = PrivateCloud.paper_setup()
        tokens = cloud.paper_tokens()
        only = CloudMonitor.for_cinder(cloud.network, "myProject")
        composite = CompositeMonitor([only])
        cloud.network.register("monitor", composite.app)
        client = cloud.client(tokens["carol"])
        assert client.get(
            "http://monitor/cmonitor/volumes").status_code == 200
