"""Tests for the one versioned verdict wire schema."""

import json

import pytest

from repro.core import (
    SCHEMA_VERSION,
    MonitorVerdict,
    Verdict,
    verdict_from_record,
    verdict_record,
)
from repro.core.auditlog import verdict_from_json, verdict_to_json
from repro.errors import MonitorError
from repro.uml import Trigger


def _verdict(**overrides):
    fields = dict(
        trigger=Trigger("DELETE", "volume"),
        verdict=Verdict.POST_VIOLATION,
        pre_holds=True, forwarded=True, response_status=204,
        post_holds=False, message="boom",
        security_requirements=["1.3"], snapshot_bytes=17,
        correlation_id="t-000042")
    fields.update(overrides)
    return MonitorVerdict(**fields)


class TestRecordShape:
    def test_every_record_is_stamped_with_the_version(self):
        record = verdict_record(_verdict())
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["operation"] == "DELETE(volume)"
        assert record["snapshot_bytes"] == 17
        assert record["unbound_roots"] == []

    def test_to_dict_and_audit_row_share_one_shape(self):
        verdict = _verdict()
        assert verdict.to_dict() == json.loads(verdict_to_json(verdict))

    def test_unbound_roots_travel_sorted(self):
        verdict = _verdict(verdict=Verdict.INDETERMINATE,
                           unbound_roots={"volume", "project"})
        record = verdict_record(verdict)
        assert record["unbound_roots"] == ["project", "volume"]


class TestRoundTrip:
    def test_record_round_trips(self):
        original = _verdict(unbound_roots=["user"])
        loaded = verdict_from_record(verdict_record(original))
        assert verdict_record(loaded) == verdict_record(original)

    def test_version_1_records_load_with_defaults(self):
        record = verdict_record(_verdict())
        del record["schema_version"]
        del record["unbound_roots"]
        del record["snapshot_bytes"]
        del record["correlation_id"]
        loaded = verdict_from_record(record)
        assert loaded.snapshot_bytes == 0
        assert loaded.correlation_id is None
        assert loaded.unbound_roots == []

    def test_newer_versions_are_rejected(self):
        record = verdict_record(_verdict())
        record["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(MonitorError, match="newer"):
            verdict_from_record(record)

    def test_malformed_records_raise_monitor_error(self):
        with pytest.raises(MonitorError):
            verdict_from_record({"verdict": "valid"})
        with pytest.raises(MonitorError):
            verdict_from_record({"schema_version": "two"})

    def test_audit_line_round_trips_indeterminate(self):
        verdict = _verdict(verdict=Verdict.INDETERMINATE, pre_holds=None,
                           forwarded=False, response_status=None,
                           unbound_roots=["project"])
        loaded = verdict_from_json(verdict_to_json(verdict))
        assert loaded.indeterminate
        assert loaded.unbound_roots == ["project"]
        assert loaded.pre_holds is None

    def test_non_object_lines_raise(self):
        with pytest.raises(MonitorError):
            verdict_from_json("[1, 2]")
        with pytest.raises(MonitorError):
            verdict_from_json("{not json")
