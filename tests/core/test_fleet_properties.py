"""Property tests for the fleet dispatcher (hypothesis-driven).

Three laws the sharded fleet rests on:

* **routing purity** -- the shard for a tenant is a pure function of
  (router seed, shard count, tenant key): no state, no arrival-order
  dependence, stable across router instances;
* **exactly-one-shard** -- every request of a workload is dispatched to
  precisely one shard, the one its tenant routes to, and the dispatch
  counters account for every request exactly once;
* **merge equivalence** -- for any interleaving of metric operations
  across per-shard registries, the merged view equals a single registry
  that saw all operations (counters sum, gauges sum, histogram buckets
  merge).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fleet import ShardRouter, tenant_from_token
from repro.httpsim import Request
from repro.obs.clock import ManualClock
from repro.obs.metrics import MetricsRegistry, merge_registries

tenants = st.text(min_size=0, max_size=24)
shard_counts = st.integers(min_value=1, max_value=8)
seeds = st.integers(min_value=0, max_value=2 ** 16)


class TestRoutingPurity:
    @given(tenant=tenants, shards=shard_counts, seed=seeds)
    @settings(max_examples=200, deadline=None)
    def test_route_is_deterministic_and_in_range(self, tenant, shards,
                                                 seed):
        router = ShardRouter(shards, seed=seed)
        first = router.route(tenant)
        assert 0 <= first < shards
        # Pure: same answer on repeat, and from a fresh equal router.
        assert router.route(tenant) == first
        assert ShardRouter(shards, seed=seed).route(tenant) == first

    @given(batch=st.lists(tenants, max_size=30), tenant=tenants,
           shards=shard_counts, seed=seeds)
    @settings(max_examples=100, deadline=None)
    def test_route_ignores_other_traffic(self, batch, tenant, shards,
                                         seed):
        router = ShardRouter(shards, seed=seed)
        before = router.route(tenant)
        for other in batch:
            router.route(other)
        assert router.route(tenant) == before

    @given(tenant=tenants, seed=seeds)
    @settings(max_examples=100, deadline=None)
    def test_single_shard_routes_everything_to_zero(self, tenant, seed):
        assert ShardRouter(1, seed=seed).route(tenant) == 0


class TestExactlyOneShard:
    @given(tokens=st.lists(st.text(min_size=1, max_size=12),
                           min_size=1, max_size=40),
           shards=shard_counts, seed=seeds)
    @settings(max_examples=100, deadline=None)
    def test_every_request_lands_on_its_tenants_shard(self, tokens,
                                                      shards, seed):
        router = ShardRouter(shards, seed=seed)
        per_shard = [0] * shards
        for token in tokens:
            request = Request("GET", "http://cmonitor/cmonitor/volumes",
                              headers={"X-Auth-Token": token})
            index = router.route(tenant_from_token(request))
            per_shard[index] += 1
            # The shard is the tenant's shard, not request-dependent.
            assert index == router.route(token)
        assert sum(per_shard) == len(tokens)

    @given(tokens=st.lists(st.text(min_size=1, max_size=12),
                           min_size=1, max_size=40),
           shards=shard_counts, seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_same_tenant_never_splits_across_shards(self, tokens, shards,
                                                    seed):
        router = ShardRouter(shards, seed=seed)
        seen = {}
        for token in tokens:
            index = router.route(token)
            assert seen.setdefault(token, index) == index


# One metric operation: (shard, kind, name, amount).  Amounts are
# integer-valued so sums are exact regardless of accumulation order --
# the property under test is the merge algebra, not float associativity.
operations = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.sampled_from(["counter", "gauge", "histogram"]),
              st.sampled_from(["requests", "retries", "latency"]),
              st.integers(min_value=0, max_value=100).map(float)),
    max_size=60)


class TestMergeEquivalence:
    @given(ops=operations)
    @settings(max_examples=100, deadline=None)
    def test_merged_registries_equal_one_registry_seeing_all_ops(self,
                                                                 ops):
        clock = ManualClock()
        shards = [MetricsRegistry(clock=clock) for _ in range(4)]
        single = MetricsRegistry(clock=clock)

        def apply(registry, kind, name, amount):
            if kind == "counter":
                registry.counter(f"m_{name}_total").inc(amount)
            elif kind == "gauge":
                registry.gauge(f"m_{name}").inc(amount)
            else:
                registry.histogram(f"m_{name}_seconds").observe(amount)

        for shard, kind, name, amount in ops:
            apply(shards[shard], kind, name, amount)
            apply(single, kind, name, amount)

        merged = merge_registries(shards, clock=clock)
        for _, kind, name, _ in ops:
            if kind == "counter":
                metric = f"m_{name}_total"
                assert merged.total(metric) == single.total(metric)
            elif kind == "gauge":
                metric = f"m_{name}"
                assert merged.get(metric).value == \
                    single.get(metric).value
            else:
                metric = f"m_{name}_seconds"
                assert merged.get(metric).state() == \
                    single.get(metric).state()

    @given(ops=operations)
    @settings(max_examples=50, deadline=None)
    def test_merge_is_interleaving_invariant(self, ops):
        # Any assignment of the same multiset of per-shard operations
        # merges to the same totals -- dispatch order cannot matter.
        clock = ManualClock()
        forward = [MetricsRegistry(clock=clock) for _ in range(4)]
        reverse = [MetricsRegistry(clock=clock) for _ in range(4)]

        def apply(registry, kind, name, amount):
            if kind == "counter":
                registry.counter(f"m_{name}_total").inc(amount)
            elif kind == "gauge":
                registry.gauge(f"m_{name}").inc(amount)
            else:
                registry.histogram(f"m_{name}_seconds").observe(amount)

        for shard, kind, name, amount in ops:
            apply(forward[shard], kind, name, amount)
        for shard, kind, name, amount in reversed(ops):
            apply(reverse[3 - shard], kind, name, amount)

        left = merge_registries(forward, clock=clock)
        right = merge_registries(reverse, clock=clock)
        for _, kind, name, _ in ops:
            if kind == "counter":
                metric = f"m_{name}_total"
                assert left.total(metric) == right.total(metric)
            elif kind == "gauge":
                metric = f"m_{name}"
                assert left.get(metric).value == right.get(metric).value
            else:
                metric = f"m_{name}_seconds"
                assert left.get(metric).state() == \
                    right.get(metric).state()
