"""Tests for the runtime cloud monitor (Figure 2 workflow)."""

import pytest

from repro.cloud import PrivateCloud
from repro.core import CloudMonitor, CloudStateProvider, Verdict
from repro.core.monitor import (
    MonitoredOperation,
    operations_from_models,
)
from repro.core import cinder_behavior_model, cinder_resource_model
from repro.uml import Trigger

MONITOR = "http://cmonitor/cmonitor/volumes"


@pytest.fixture()
def setup():
    cloud = PrivateCloud.paper_setup(volume_quota=3)
    tokens = cloud.paper_tokens()
    monitor = CloudMonitor.for_cinder(cloud.network, "myProject",
                                      enforcing=True)
    cloud.network.register("cmonitor", monitor.app)
    clients = {name: cloud.client(token) for name, token in tokens.items()}
    return cloud, monitor, clients


@pytest.fixture()
def audit_setup():
    cloud = PrivateCloud.paper_setup(volume_quota=3)
    tokens = cloud.paper_tokens()
    monitor = CloudMonitor.for_cinder(cloud.network, "myProject",
                                      enforcing=False)
    cloud.network.register("cmonitor", monitor.app)
    clients = {name: cloud.client(token) for name, token in tokens.items()}
    return cloud, monitor, clients


class TestOperationsFromModels:
    def test_routes_derived(self):
        operations = operations_from_models(
            cinder_behavior_model(), cinder_resource_model(),
            cloud_base="http://cinder/v3/p1")
        by_trigger = {str(op.trigger): op for op in operations}
        assert by_trigger["POST(volumes)"].monitor_path == "cmonitor/volumes"
        assert by_trigger["DELETE(volume)"].monitor_path == \
            "cmonitor/volumes/<str:volume_id>"
        assert by_trigger["DELETE(volume)"].cloud_url_template == \
            "http://cinder/v3/p1/volumes/{volume_id}"

    def test_expected_codes_defaults(self):
        operation = MonitoredOperation(
            Trigger("DELETE", "volume"), "p", "u")
        assert operation.expected_codes == (204,)
        operation = MonitoredOperation(Trigger("POST", "volumes"), "p", "u")
        assert 202 in operation.expected_codes

    def test_cloud_url_substitution(self):
        operation = MonitoredOperation(
            Trigger("GET", "volume"), "p",
            "http://cinder/v3/p1/volumes/{volume_id}")
        assert operation.cloud_url({"volume_id": "vol-9"}) == \
            "http://cinder/v3/p1/volumes/vol-9"


class TestStateProvider:
    def test_bindings_shape(self, setup):
        cloud, monitor, clients = setup
        token = cloud.keystone.issue_token("alice", "alice-secret",
                                           "myProject")
        provider = CloudStateProvider(cloud.network, "myProject")
        bindings = provider.bindings(token)
        assert bindings["project"]["id"] == "myProject"
        assert bindings["project"]["volumes"] == []
        assert bindings["quota_sets"]["volumes"] == 3
        assert bindings["user"]["roles"] == ["admin"]
        assert bindings["user"]["groups"] == ["proj_administrator"]

    def test_bindings_with_volume(self, setup):
        cloud, monitor, clients = setup
        token = cloud.keystone.issue_token("bob", "bob-secret", "myProject")
        client = cloud.client(token)
        vid = client.post(cloud.cinder_url("/v3/myProject/volumes"),
                          {"volume": {}}).json()["volume"]["id"]
        provider = CloudStateProvider(cloud.network, "myProject")
        bindings = provider.bindings(token, item_id=vid)
        assert bindings["volume"]["status"] == "available"
        assert len(bindings["project"]["volumes"]) == 1

    def test_invalid_token_yields_empty_state(self, setup):
        cloud, monitor, clients = setup
        provider = CloudStateProvider(cloud.network, "myProject")
        bindings = provider.bindings("bogus-token")
        assert bindings["project"] == {}
        assert bindings["user"] == {}

    def test_probe_count_increments(self, setup):
        cloud, monitor, clients = setup
        provider = CloudStateProvider(cloud.network, "myProject")
        token = cloud.keystone.issue_token("alice", "alice-secret",
                                           "myProject")
        before = provider.probe_count
        provider.bindings(token)
        assert provider.probe_count == before + 4  # project/volumes/quota/user


class TestEnforcingMode:
    def test_valid_post_passes_through(self, setup):
        cloud, monitor, clients = setup
        response = clients["bob"].post(MONITOR, {"volume": {"name": "v"}})
        assert response.status_code == 202
        assert monitor.log[-1].verdict == Verdict.VALID

    def test_unauthorized_post_blocked_before_cloud(self, setup):
        cloud, monitor, clients = setup
        before = cloud.cinder.volume_count("myProject")
        response = clients["carol"].post(MONITOR, {"volume": {}})
        assert response.status_code == 412
        assert monitor.log[-1].verdict == Verdict.PRE_BLOCKED
        assert monitor.log[-1].forwarded is False
        # The cloud never saw the request.
        assert cloud.cinder.volume_count("myProject") == before

    def test_unauthorized_delete_blocked(self, setup):
        cloud, monitor, clients = setup
        vid = clients["bob"].post(
            MONITOR, {"volume": {}}).json()["volume"]["id"]
        response = clients["bob"].delete(f"{MONITOR}/{vid}")
        assert response.status_code == 412

    def test_delete_in_use_blocked(self, setup):
        cloud, monitor, clients = setup
        vid = clients["bob"].post(
            MONITOR, {"volume": {}}).json()["volume"]["id"]
        clients["bob"].post(
            cloud.cinder_url(f"/v3/myProject/volumes/{vid}/action"),
            {"os-attach": {"server_id": "s1"}})
        response = clients["alice"].delete(f"{MONITOR}/{vid}")
        assert response.status_code == 412

    def test_post_blocked_at_quota(self, setup):
        cloud, monitor, clients = setup
        for _ in range(3):
            clients["bob"].post(MONITOR, {"volume": {}})
        response = clients["bob"].post(MONITOR, {"volume": {}})
        assert response.status_code == 412

    def test_full_crud_cycle_valid(self, setup):
        cloud, monitor, clients = setup
        created = clients["bob"].post(MONITOR, {"volume": {"name": "v"}})
        vid = created.json()["volume"]["id"]
        assert clients["carol"].get(f"{MONITOR}/{vid}").status_code == 200
        assert clients["bob"].put(
            f"{MONITOR}/{vid}", {"volume": {"name": "w"}}).status_code == 200
        assert clients["alice"].delete(f"{MONITOR}/{vid}").status_code == 204
        assert all(v.verdict == Verdict.VALID for v in monitor.log)

    def test_method_not_allowed_on_monitor(self, setup):
        cloud, monitor, clients = setup
        response = clients["bob"].patch(MONITOR, {"volume": {}})
        assert response.status_code == 405

    def test_412_body_carries_verdict(self, setup):
        cloud, monitor, clients = setup
        response = clients["carol"].post(MONITOR, {"volume": {}})
        body = response.json()["monitor"]
        assert body["verdict"] == Verdict.PRE_BLOCKED
        assert body["operation"] == "POST(volumes)"
        assert body["security_requirements"] == ["1.3"]


class TestAuditMode:
    def test_clean_cloud_produces_no_violations(self, audit_setup):
        cloud, monitor, clients = audit_setup
        clients["bob"].post(MONITOR, {"volume": {}})
        clients["carol"].post(MONITOR, {"volume": {}})  # denied by cloud too
        vid = cloud.cinder.volumes.all()[0]["id"]
        clients["bob"].delete(f"{MONITOR}/{vid}")       # denied by cloud too
        clients["alice"].delete(f"{MONITOR}/{vid}")
        assert monitor.violations() == []
        verdicts = [v.verdict for v in monitor.log]
        assert Verdict.INVALID_AGREED in verdicts
        assert Verdict.VALID in verdicts

    def test_unauthorized_request_forwarded_in_audit(self, audit_setup):
        cloud, monitor, clients = audit_setup
        response = clients["carol"].post(MONITOR, {"volume": {}})
        assert response.status_code == 403  # the cloud's own denial
        assert monitor.log[-1].forwarded is True

    def test_escalation_detected(self, audit_setup):
        cloud, monitor, clients = audit_setup
        cloud.cinder.policy.set_rule("volume:post", "@")  # seeded fault
        response = clients["carol"].post(MONITOR, {"volume": {}})
        assert response.status_code == 502
        assert monitor.log[-1].verdict == Verdict.PRE_VIOLATION

    def test_privilege_loss_detected(self, audit_setup):
        cloud, monitor, clients = audit_setup
        cloud.cinder.policy.set_rule("volume:get", "role:admin")
        response = clients["carol"].get(MONITOR)
        assert response.status_code == 502
        assert monitor.log[-1].verdict == Verdict.REJECTED_VALID

    def test_wrong_status_code_detected(self, audit_setup):
        cloud, monitor, clients = audit_setup
        vid = clients["bob"].post(
            MONITOR, {"volume": {}}).json()["volume"]["id"]
        cloud.cinder.delete_success_code = 200
        response = clients["alice"].delete(f"{MONITOR}/{vid}")
        assert response.status_code == 502
        assert monitor.log[-1].verdict == Verdict.POST_VIOLATION
        assert "status code" in monitor.log[-1].message

    def test_status_check_bypass_detected(self, audit_setup):
        cloud, monitor, clients = audit_setup
        vid = clients["bob"].post(
            MONITOR, {"volume": {}}).json()["volume"]["id"]
        clients["bob"].post(
            cloud.cinder_url(f"/v3/myProject/volumes/{vid}/action"),
            {"os-attach": {"server_id": "s1"}})
        cloud.cinder.enforce_status_check = False
        response = clients["alice"].delete(f"{MONITOR}/{vid}")
        # pre is false (in-use) but the mutated cloud deletes anyway.
        assert response.status_code == 502
        assert monitor.log[-1].verdict == Verdict.PRE_VIOLATION


class TestLogAndCoverage:
    def test_log_accumulates(self, setup):
        cloud, monitor, clients = setup
        clients["bob"].post(MONITOR, {"volume": {}})
        clients["carol"].get(MONITOR)
        assert len(monitor.log) == 2
        monitor.clear_log()
        assert monitor.log == []

    def test_coverage_tracks_requirements(self, setup):
        cloud, monitor, clients = setup
        clients["bob"].post(MONITOR, {"volume": {}})
        clients["carol"].get(MONITOR)
        assert "1.3" in monitor.coverage.covered_ids()
        assert "1.1" in monitor.coverage.covered_ids()
        assert "1.2" in monitor.coverage.uncovered_ids()

    def test_snapshot_bytes_recorded(self, setup):
        cloud, monitor, clients = setup
        clients["bob"].post(MONITOR, {"volume": {}})
        verdict = monitor.log[-1]
        assert 0 < verdict.snapshot_bytes <= 64

    def test_verdict_to_dict(self, setup):
        cloud, monitor, clients = setup
        clients["bob"].post(MONITOR, {"volume": {}})
        record = monitor.log[-1].to_dict()
        assert record["operation"] == "POST(volumes)"
        assert record["verdict"] == "valid"
        assert record["response_status"] == 202
