"""Tests for the cross-request probe cache and its monitor wiring.

The gate throughout is *parity*: a cached monitor must emit exactly the
verdicts an uncached one does, only with fewer probes.
"""

import threading

import pytest

from repro.core import MethodContract, MonitorFleet, ProbeCache
from repro.validation import (
    TestOracle,
    default_setup,
    measure_probe_rate,
    recoverable_program,
    run_cache_parity_campaign,
    standard_battery,
)


class TestProbeCacheUnit:
    def test_miss_then_hit(self):
        cache = ProbeCache()
        hit, value = cache.get("project", None, "tok-a")
        assert hit is False and value is None
        cache.put("project", None, "tok-a", {"n": 1})
        hit, value = cache.get("project", None, "tok-a")
        assert hit is True and value == {"n": 1}
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1,
                                 "invalidations": 0}

    def test_tokens_never_share_entries(self):
        cache = ProbeCache()
        cache.put("project", None, "alice", {"who": "alice"})
        hit, _ = cache.get("project", None, "bob")
        assert hit is False

    def test_item_scoped_entries_key_on_resource_id(self):
        cache = ProbeCache()
        cache.put("volume", "v1", "tok", {"id": "v1"})
        assert cache.get("volume", "v2", "tok")[0] is False
        assert cache.get("volume", "v1", "tok") == (True, {"id": "v1"})

    def test_read_returns_an_isolated_copy(self):
        cache = ProbeCache()
        cache.put("project", None, "tok", {"volumes": [1, 2]})
        _, value = cache.get("project", None, "tok")
        value["volumes"].append(3)
        assert cache.get("project", None, "tok")[1] == {"volumes": [1, 2]}

    def test_store_copies_the_value(self):
        cache = ProbeCache()
        original = {"volumes": [1]}
        cache.put("project", None, "tok", original)
        original["volumes"].append(2)
        assert cache.get("project", None, "tok")[1] == {"volumes": [1]}

    def test_invalidate_crosses_tokens_and_ids(self):
        cache = ProbeCache()
        cache.put("project", None, "alice", {})
        cache.put("project", None, "bob", {})
        cache.put("volume", "v1", "alice", {})
        cache.put("user", None, "alice", {})
        evicted = cache.invalidate(["project", "volume"])
        assert evicted == 3
        assert len(cache) == 1
        assert cache.get("user", None, "alice")[0] is True
        assert cache.stats()["invalidations"] == 3

    def test_clear_counts_as_invalidation(self):
        cache = ProbeCache()
        cache.put("project", None, "tok", {})
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 1


def _verdict_rows(monitor):
    return [(v.trigger, v.verdict, v.pre_holds, v.post_holds,
             v.response_status) for v in monitor.log]


class TestMonitorWiring:
    def test_cached_monitor_matches_uncached_verdicts(self):
        battery = standard_battery()
        cloud_a, plain = default_setup()
        TestOracle(cloud_a, plain).run(battery)
        cloud_b, cached = default_setup(probe_cache=True)
        TestOracle(cloud_b, cached).run(battery)
        assert _verdict_rows(cached) == _verdict_rows(plain)
        assert cached.provider.probe_count < plain.provider.probe_count
        stats = cached.probe_cache.stats()
        assert stats["hits"] > 0
        # The battery mutates (POST/DELETE), so invalidation must fire.
        assert stats["invalidations"] > 0

    def test_hits_metric_family_is_exported(self):
        cloud, monitor = default_setup(probe_cache=True)
        TestOracle(cloud, monitor).run(standard_battery())
        total = monitor.obs.metrics.total("monitor_probe_cache_hits_total")
        assert total == monitor.probe_cache.stats()["hits"] > 0

    def test_mutation_invalidates_dirty_roots(self):
        cloud, monitor = default_setup(probe_cache=True)
        oracle = TestOracle(cloud, monitor)
        battery = standard_battery()
        # Find the first mutation step; everything before is GET-only.
        first_mutation = next(i for i, step in enumerate(battery)
                              if step.method != "GET")
        oracle.run(battery[:first_mutation])
        populated = len(monitor.probe_cache)
        before = monitor.probe_cache.stats()["invalidations"]
        oracle.run(battery[first_mutation:first_mutation + 1])
        after = monitor.probe_cache.stats()["invalidations"]
        if populated:
            assert after > before

    def test_probe_rate_drops_under_budget(self):
        baseline = measure_probe_rate()
        cached = measure_probe_rate(probe_cache=True)
        assert cached["probes_per_request"] < baseline["probes_per_request"]
        assert cached["probes_per_request"] < 7.20
        assert cached["cache"]["hits"] > 0

    def test_fleet_shards_own_their_caches(self):
        from repro.cloud import PrivateCloud

        cloud = PrivateCloud.paper_setup()
        fleet = MonitorFleet.for_service("cinder", cloud.network,
                                         "myProject", shards=2,
                                         probe_cache=True)
        caches = [m.probe_cache for m in fleet.shards]
        assert all(c is not None for c in caches)
        assert caches[0] is not caches[1]
        assert all(entry["probe_cache"] is not None
                   for entry in fleet.stats()["per_shard"])
        fleet.close()

    def test_cache_off_by_default(self):
        cloud, monitor = default_setup()
        assert monitor.probe_cache is None
        assert monitor.provider.probe_cache is None


class TestChaosParity:
    def test_parity_on_clean_substrate(self):
        report = run_cache_parity_campaign()
        assert report.parity
        assert report.first_divergence() is None

    def test_parity_under_recoverable_faults(self):
        report = run_cache_parity_campaign(
            fault_factory=recoverable_program)
        assert report.parity

    def test_cached_fleet_matches_uncached_serial(self):
        """Shards partition traffic, not cloud state: one shard's
        forwarded mutation must invalidate every shard's cache."""
        from repro.validation import run_fleet_leg, run_leg

        serial = run_leg(count=30, seed=7)
        fleet = run_fleet_leg(count=30, seed=7, shards=4,
                              probe_cache=True)
        assert serial.rows == fleet.rows


class TestCompileThreadSafety:
    def _contract(self):
        from repro.core.behavior_model import cinder_behavior_model
        from repro.core.contracts import ContractGenerator
        from repro.core.resource_model import cinder_resource_model

        generator = ContractGenerator(cinder_behavior_model(),
                                      cinder_resource_model())
        return next(iter(generator.all_contracts().values()))

    def test_concurrent_compile_is_single_and_consistent(self, monkeypatch):
        import repro.ocl.compile as ocl_compile

        contract = self._contract()
        calls = []
        real = ocl_compile.compile_bool

        def slow_compile(expression):
            calls.append(expression)
            # Widen the race window: a reader must never observe a
            # published pre-closure without its post-closure.
            threading.Event().wait(0.005)
            return real(expression)

        monkeypatch.setattr(ocl_compile, "compile_bool", slow_compile)
        violations = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                if (contract._compiled_pre is not None
                        and contract._compiled_post is None):
                    violations.append("pre published before post")

        watcher = threading.Thread(target=reader)
        watcher.start()
        workers = [threading.Thread(target=contract.compile)
                   for _ in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stop.set()
        watcher.join()
        assert not violations
        assert contract.is_compiled
        # Eight racing threads, exactly one winner: two compile_bool
        # calls (pre + post), not sixteen.
        assert len(calls) == 2

    def test_probe_plan_memo_is_consistent_across_threads(self):
        contract = self._contract()
        plans = []

        def plan():
            plans.append(contract.probe_plan())

        threads = [threading.Thread(target=plan) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(plan is plans[0] for plan in plans)
