"""Tests for the OCL-vs-resource-model cross-checker."""

import pytest

from repro.core import (
    BehaviorModelBuilder,
    check_expression,
    check_models,
    cinder_behavior_model,
    cinder_resource_model,
)
from repro.core.nova_scenario import nova_behavior_model, nova_resource_model


@pytest.fixture(scope="module")
def diagram():
    return cinder_resource_model()


class TestCheckExpression:
    def test_clean_expression(self, diagram):
        assert check_expression(
            "project.id->size()=1 and project.volumes->size()=0",
            diagram, "x") == []

    def test_attribute_typo_flagged(self, diagram):
        violations = check_expression(
            "volume.statu <> 'in-use'", diagram, "x")
        assert len(violations) == 1
        assert "statu" in violations[0].message

    def test_unknown_root_flagged_once(self, diagram):
        violations = check_expression(
            "ghost.id->size() = ghost.name->size()", diagram, "x")
        assert len(violations) == 1
        assert "ghost" in violations[0].message

    def test_association_role_accepted(self, diagram):
        # project.volumes is a role name, not an attribute.
        assert check_expression(
            "project.volumes->size() < quota_sets.volumes",
            diagram, "x") == []

    def test_runtime_user_bindings_accepted(self, diagram):
        assert check_expression(
            "user.roles->includes('admin') and user.groups->size() > 0",
            diagram, "x") == []

    def test_iterator_variable_not_flagged(self, diagram):
        assert check_expression(
            "project.volumes->select(v | v.status = 'in-use')->size() = 0",
            diagram, "x") == []

    def test_case_insensitive_root_match(self, diagram):
        assert check_expression("volumes.id->size() >= 0", diagram, "x") == []

    def test_deep_chain_checks_first_step_only(self, diagram):
        # user.id.groups: 'id' is a runtime step; deeper steps are dynamic.
        assert check_expression("user.id.groups = 'admin'", diagram, "x") == []

    def test_let_variable_not_flagged(self, diagram):
        assert check_expression(
            "let n = project.volumes->size() in n >= 0", diagram, "x") == []

    def test_element_recorded(self, diagram):
        violations = check_expression("ghost.x", diagram, "state s1")
        assert violations[0].element == "state s1"


class TestCheckModels:
    def test_cinder_models_clean(self):
        assert check_models(cinder_resource_model(),
                            cinder_behavior_model()) == []

    def test_cinder_release2_models_clean(self):
        assert check_models(
            cinder_resource_model(with_snapshots=True),
            cinder_behavior_model(with_snapshots=True)) == []

    def test_release2_machine_vs_release1_diagram_flagged(self):
        # The snapshot guard navigates volume.snapshots, which the old
        # resource model cannot justify: the checker catches exactly the
        # model-revision gap.
        violations = check_models(cinder_resource_model(),
                                  cinder_behavior_model(with_snapshots=True))
        assert violations
        assert all("snapshots" in violation.message
                   for violation in violations)

    def test_nova_models_clean(self):
        assert check_models(nova_resource_model(), nova_behavior_model()) == []

    def test_typo_in_invariant_located(self, diagram):
        builder = BehaviorModelBuilder("m")
        builder.state("bad", "volume.stauts = 'x'", initial=True)
        violations = check_models(diagram, builder.machine)
        assert len(violations) == 1
        assert violations[0].element == "state bad"

    def test_typo_in_guard_located(self, diagram):
        builder = BehaviorModelBuilder("m")
        builder.state("s", "true", initial=True)
        builder.transition("s", "s", "GET(volume)",
                           guard="volume.sizee > 1")
        violations = check_models(diagram, builder.machine)
        assert len(violations) == 1
        assert "transition s->s#0" == violations[0].element

    def test_typo_in_effect_located(self, diagram):
        builder = BehaviorModelBuilder("m")
        builder.state("s", "true", initial=True)
        builder.transition("s", "s", "GET(volume)",
                           effect="project.volums->size() = 0")
        violations = check_models(diagram, builder.machine)
        assert any("volums" in violation.message
                   for violation in violations)

    def test_synthetic_models_have_expected_unknowns(self):
        # The synthetic scaling models deliberately use free roots
        # (root/quota) that are not resource classes; the checker reports
        # them rather than guessing.
        from repro.workloads import synthetic_models

        diagram, machine = synthetic_models(1)
        violations = check_models(diagram, machine)
        roots = {violation.message.split("'")[1]
                 for violation in violations}
        assert roots <= {"root", "quota"}
