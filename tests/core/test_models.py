"""Tests for the resource/behavior model builders and the Cinder models."""

import pytest

from repro.errors import ModelError
from repro.core import (
    BehaviorModelBuilder,
    ResourceModelBuilder,
    cinder_behavior_model,
    cinder_resource_model,
)
from repro.core.behavior_model import FULL, NO_VOLUME, NOT_FULL
from repro.rbac import SecurityRequirementsTable
from repro.uml import validate_class_diagram, validate_state_machine
from repro.uml.validation import errors_only


class TestResourceModelBuilder:
    def test_collection_and_resource(self):
        diagram = (ResourceModelBuilder("d")
                   .collection("Things")
                   .resource("thing", [("id", "String")])
                   .contains("Things", "thing")
                   .build())
        assert diagram.get_class("Things").is_collection
        assert not diagram.get_class("thing").is_collection

    def test_resource_requires_attributes(self):
        with pytest.raises(ModelError):
            ResourceModelBuilder("d").resource("thing", [])

    def test_contains_default_role_name(self):
        diagram = (ResourceModelBuilder("d")
                   .collection("Things")
                   .resource("thing", [("id", "String")])
                   .contains("Things", "thing")
                   .build())
        assert diagram.associations[0].role_name == "thing"

    def test_build_validates(self):
        builder = ResourceModelBuilder("d")
        builder.collection("OnlyCollection")
        builder.resource("a", [("id", "String")])
        builder.resource("b", [("id", "String")])
        builder.references("a", "b", "bs")
        builder.references("b", "a", "as_")
        # a/b cycle leaves OnlyCollection as the only root but a and b
        # unreachable -- actually the cycle makes no root for a/b; builder
        # still has OnlyCollection as root, so only warnings arise.
        diagram = builder.build()
        assert diagram.name == "d"

    def test_build_raises_on_errors(self):
        builder = ResourceModelBuilder("d")
        builder.resource("a", [("id", "String")])
        builder.resource("b", [("id", "String")])
        builder.references("a", "b", "")
        with pytest.raises(ModelError):
            builder.build()


class TestBehaviorModelBuilder:
    def test_guard_fold_with_table(self):
        builder = BehaviorModelBuilder(
            "m", SecurityRequirementsTable.paper_table())
        builder.state("s", "true", initial=True)
        builder.transition("s", "s", "DELETE(volume)",
                           guard="volume.status <> 'in-use'")
        transition = builder.machine.transitions[0]
        assert "user.roles->includes('admin')" in transition.guard
        assert "volume.status" in transition.guard
        assert transition.security_requirements == ("1.4",)

    def test_guard_fold_trivial_guard(self):
        builder = BehaviorModelBuilder(
            "m", SecurityRequirementsTable.paper_table())
        builder.state("s", "true", initial=True)
        builder.transition("s", "s", "GET(volume)")
        assert builder.machine.transitions[0].guard == (
            "user.roles->includes('admin') or "
            "user.roles->includes('member') or "
            "user.roles->includes('user')")

    def test_collection_trigger_uses_singular_table_row(self):
        builder = BehaviorModelBuilder(
            "m", SecurityRequirementsTable.paper_table())
        builder.state("s", "true", initial=True)
        builder.transition("s", "s", "POST(volumes)")
        transition = builder.machine.transitions[0]
        assert transition.security_requirements == ("1.3",)
        assert "includes('member')" in transition.guard

    def test_explicit_requirements_win(self):
        builder = BehaviorModelBuilder(
            "m", SecurityRequirementsTable.paper_table())
        builder.state("s", "true", initial=True)
        builder.transition("s", "s", "GET(volume)",
                           security_requirements=["9.9"])
        assert builder.machine.transitions[0].security_requirements == ("9.9",)

    def test_no_table_leaves_guard_alone(self):
        builder = BehaviorModelBuilder("m")
        builder.state("s", "true", initial=True)
        builder.transition("s", "s", "DELETE(volume)", guard="x = 1")
        assert builder.machine.transitions[0].guard == "x = 1"

    def test_build_raises_on_bad_ocl(self):
        builder = BehaviorModelBuilder("m")
        builder.state("s", "((broken", initial=True)
        with pytest.raises(ModelError):
            builder.build()


class TestCinderResourceModel:
    def test_well_formed(self):
        diagram = cinder_resource_model()
        assert errors_only(validate_class_diagram(diagram)) == []

    def test_classes_match_figure3(self):
        diagram = cinder_resource_model()
        assert set(diagram.classes) == {
            "Projects", "project", "Volumes", "volume", "quota_sets",
            "usergroup"}

    def test_collections(self):
        diagram = cinder_resource_model()
        assert diagram.get_class("Projects").is_collection
        assert diagram.get_class("Volumes").is_collection
        assert not diagram.get_class("volume").is_collection

    def test_paper_uri_layout(self):
        diagram = cinder_resource_model()
        assert diagram.uri_paths()["Volumes"] == "/{project_id}/volumes"
        assert diagram.item_uri("volume") == \
            "/{project_id}/volumes/{volume_id}"

    def test_volume_attributes(self):
        volume = cinder_resource_model().get_class("volume")
        names = [a.name for a in volume.attributes]
        assert "status" in names
        assert "id" in names


class TestCinderBehaviorModel:
    def test_well_formed(self):
        machine = cinder_behavior_model()
        diagram = cinder_resource_model()
        assert errors_only(validate_state_machine(machine, diagram)) == []

    def test_three_states(self):
        machine = cinder_behavior_model()
        assert set(machine.states) == {NO_VOLUME, NOT_FULL, FULL}
        assert machine.initial_state().name == NO_VOLUME

    def test_delete_fires_three_transitions(self):
        # Section V: "there are three different transitions triggered by
        # DELETE(volume)".
        machine = cinder_behavior_model()
        assert len(machine.transitions_triggered_by("DELETE(volume)")) == 3

    def test_post_transitions_cover_quota_edge(self):
        machine = cinder_behavior_model()
        posts = machine.transitions_triggered_by("POST(volumes)")
        targets = {(t.source, t.target) for t in posts}
        assert (NO_VOLUME, NOT_FULL) in targets
        assert (NOT_FULL, FULL) in targets

    def test_all_states_reachable(self):
        machine = cinder_behavior_model()
        assert set(machine.reachable_states()) == set(machine.states)

    def test_security_requirements_complete(self):
        machine = cinder_behavior_model()
        assert set(machine.security_requirement_ids()) == {
            "1.1", "1.2", "1.3", "1.4"}

    def test_initial_invariant_matches_paper(self):
        machine = cinder_behavior_model()
        assert machine.get_state(NO_VOLUME).invariant == (
            "project.id->size()=1 and project.volumes->size()=0")

    def test_delete_guard_requires_detached_and_admin(self):
        machine = cinder_behavior_model()
        for transition in machine.transitions_triggered_by("DELETE(volume)"):
            assert "volume.status <> 'in-use'" in transition.guard
            assert "user.roles->includes('admin')" in transition.guard
