"""Tests for the behavioral-model consistency analyzer."""

import pytest

from repro.core import BehaviorModelBuilder, cinder_behavior_model
from repro.core.consistency import (
    check_consistency,
    check_guard_determinism,
    check_state_disjointness,
    cinder_state_space,
)
from repro.core.nova_scenario import nova_behavior_model


def simple_space():
    """A small numeric state space for hand-built machines."""
    return [{"x": value} for value in range(0, 6)]


class TestStateSpace:
    def test_cinder_space_covers_dimensions(self):
        space = cinder_state_space()
        counts = {len(b["project"]["volumes"]) for b in space}
        assert 0 in counts and max(counts) >= 3
        statuses = {b["volume"]["status"] for b in space}
        assert statuses == {"available", "in-use"}
        roles = {tuple(b["user"]["roles"]) for b in space}
        assert ("admin",) in roles and () in roles


class TestCinderAndNovaClean:
    def test_cinder_model_consistent(self):
        assert check_consistency(cinder_behavior_model()) == []

    def test_cinder_release2_consistent(self):
        assert check_consistency(
            cinder_behavior_model(with_snapshots=True)) == []

    def test_nova_model_consistent(self):
        space = [
            {"project": {"id": "p",
                         "servers": [{"id": f"s{i}"} for i in range(n)]},
             "server": {"id": "s0"},
             "user": {"roles": roles}}
            for n in range(0, 3)
            for roles in (["admin"], ["member"], ["user"])
        ]
        assert check_consistency(nova_behavior_model(), space) == []


class TestStateDisjointness:
    def test_overlapping_invariants_witnessed(self):
        builder = BehaviorModelBuilder("m")
        builder.state("low", "x < 4", initial=True)
        builder.state("mid", "x >= 2 and x <= 5")
        machine = builder.machine
        overlaps = check_state_disjointness(machine, simple_space())
        assert len(overlaps) == 1
        overlap = overlaps[0]
        assert overlap.kind == "state-invariants"
        assert {overlap.first, overlap.second} == {"low", "mid"}
        # The witness really does satisfy both invariants.
        assert 2 <= overlap.witness["x"] < 4

    def test_disjoint_invariants_clean(self):
        builder = BehaviorModelBuilder("m")
        builder.state("low", "x < 3", initial=True)
        builder.state("high", "x >= 3")
        assert check_state_disjointness(builder.machine, simple_space()) == []

    def test_one_witness_per_pair(self):
        builder = BehaviorModelBuilder("m")
        builder.state("a", "x >= 0", initial=True)
        builder.state("b", "x >= 0")
        overlaps = check_state_disjointness(builder.machine, simple_space())
        assert len(overlaps) == 1


class TestGuardDeterminism:
    def make_machine(self, guard_a, guard_b, same_target=False):
        builder = BehaviorModelBuilder("m")
        builder.state("s", "x >= 0", initial=True)
        builder.state("t", "x >= 0")
        builder.transition("s", "t", "POST(r)", guard=guard_a,
                           effect="x = 1")
        builder.transition("s", "t" if same_target else "s", "POST(r)",
                           guard=guard_b, effect="x = 2")
        return builder.machine

    def test_overlapping_guards_witnessed(self):
        machine = self.make_machine("x < 4", "x > 2")
        overlaps = check_guard_determinism(machine, simple_space())
        assert len(overlaps) == 1
        assert overlaps[0].kind == "guards"
        assert overlaps[0].witness["x"] == 3

    def test_disjoint_guards_clean(self):
        machine = self.make_machine("x < 3", "x >= 3")
        assert check_guard_determinism(machine, simple_space()) == []

    def test_identical_transitions_not_flagged(self):
        # Same target and effect: redundant, not contradictory.
        builder = BehaviorModelBuilder("m")
        builder.state("s", "x >= 0", initial=True)
        builder.transition("s", "s", "GET(r)", guard="x > 0", effect="true")
        builder.transition("s", "s", "GET(r)", guard="x > 1", effect="true")
        assert check_guard_determinism(builder.machine, simple_space()) == []

    def test_source_invariant_gates_the_check(self):
        # Guards overlap only outside the source invariant: clean.
        builder = BehaviorModelBuilder("m")
        builder.state("s", "x < 2", initial=True)
        builder.state("t", "x >= 2")
        builder.transition("s", "t", "POST(r)", guard="x > 3", effect="x=1")
        builder.transition("s", "s", "POST(r)", guard="x > 4", effect="x=2")
        assert check_guard_determinism(builder.machine, simple_space()) == []

    def test_different_triggers_never_compared(self):
        builder = BehaviorModelBuilder("m")
        builder.state("s", "x >= 0", initial=True)
        builder.state("t", "x >= 0")
        builder.transition("s", "t", "POST(r)", guard="x > 0", effect="x=1")
        builder.transition("s", "s", "DELETE(r)", guard="x > 0", effect="x=2")
        assert check_guard_determinism(builder.machine, simple_space()) == []
