"""Tests for the resilient transport: retries, breakers, indeterminate."""

import pytest

from repro.cloud import PrivateCloud
from repro.core import (
    CircuitBreaker,
    CloudMonitor,
    ResilientTransport,
    RetryPolicy,
    Verdict,
    transport_failure,
)
from repro.core.resilience import (
    TRANSPORT_ERROR_HEADER,
    BreakerState,
    ProbeFailure,
)
from repro.errors import MonitorError
from repro.httpsim import FailN, Request, Response
from repro.obs import Observability
from repro.obs.clock import ManualClock

MONITOR = "http://cmonitor/cmonitor/volumes"


class TestRetryPolicy:
    def test_delays_follow_the_exponential_curve(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_delay_is_capped(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0,
                             max_delay=2.0, jitter=0.0)
        assert policy.delay(5) == pytest.approx(2.0)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.2, seed=3)
        first = policy.delay(1, key="cinder")
        assert first == policy.delay(1, key="cinder")
        assert 0.08 <= first <= 0.12
        # Different keys spread differently (with overwhelming odds).
        assert policy.delay(1, key="keystone") != first

    def test_validation(self):
        with pytest.raises(MonitorError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(MonitorError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(MonitorError):
            RetryPolicy().delay(0)

    def test_retryable_statuses(self):
        policy = RetryPolicy()
        assert policy.retryable(Response.error(503, "x"))
        assert policy.retryable(Response.error(502, "x"))
        assert not policy.retryable(Response.error(404, "x"))
        assert not policy.retryable(Response(200, b"{}"))


class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers_on_the_clock(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=2, recovery_time=30.0,
                                 clock=clock)
        assert breaker.state == BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        assert not breaker.allow()
        clock.advance(30.0)
        assert breaker.state == BreakerState.HALF_OPEN
        assert breaker.allow()  # the trial request

    def test_half_open_failure_reopens_success_closes(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_time=10.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()  # trial failed
        assert breaker.state == BreakerState.OPEN
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()  # trial succeeded
        assert breaker.state == BreakerState.CLOSED


class TestResilientTransport:
    def _cloud_and_transport(self, **kwargs):
        cloud = PrivateCloud.paper_setup(volume_quota=3)
        obs = Observability(clock=ManualClock())
        transport = ResilientTransport(cloud.network, observability=obs,
                                       **kwargs)
        return cloud, transport, obs

    def _probe(self, cloud):
        token = cloud.keystone.issue_token("alice", "alice-secret",
                                           "myProject")
        return Request("GET", "http://cinder/v3/myProject/volumes",
                       headers={"X-Auth-Token": token})

    def test_fail_once_then_succeed_is_absorbed(self):
        cloud, transport, obs = self._cloud_and_transport(
            policy=RetryPolicy(max_attempts=3, base_delay=0.01))
        cloud.network.inject_fault("cinder", FailN(1))
        response = transport.send(self._probe(cloud))
        assert response.status_code == 200
        assert transport_failure(response) is None
        assert obs.metrics.counter_value(
            "monitor_retries_total", host="cinder") == 1

    def test_exhaustion_synthesizes_a_marked_503(self):
        cloud, transport, obs = self._cloud_and_transport(
            policy=RetryPolicy(max_attempts=2, base_delay=0.01))
        cloud.network.inject_fault("cinder", FailN(99))
        response = transport.send(self._probe(cloud))
        assert response.status_code == 503
        assert transport_failure(response) == "retries-exhausted"
        body = response.json()
        assert body["attempts"] == 2
        assert body["last_status"] == 503
        assert obs.metrics.counter_value(
            "monitor_transport_failures_total",
            host="cinder", reason="retries-exhausted") == 1

    def test_backoff_advances_the_injected_clock_not_wall_time(self):
        cloud, transport, obs = self._cloud_and_transport(
            policy=RetryPolicy(max_attempts=3, base_delay=0.5, jitter=0.0))
        cloud.network.inject_fault("cinder", FailN(2))
        before = obs.clock()
        response = transport.send(self._probe(cloud))
        assert response.status_code == 200
        # Two waits: 0.5 and 1.0 virtual seconds (plus clock read ticks).
        assert obs.clock() - before >= 1.5

    def test_breaker_opens_and_fast_fails(self):
        cloud, transport, obs = self._cloud_and_transport(
            policy=RetryPolicy(max_attempts=1),
            failure_threshold=2, recovery_time=60.0)
        cloud.network.inject_fault("cinder", FailN(99))
        probe = self._probe(cloud)
        transport.send(probe)
        transport.send(probe)
        assert transport.breaker("cinder").state == BreakerState.OPEN
        response = transport.send(probe)
        assert transport_failure(response) == "circuit-open"
        assert obs.metrics.counter_value(
            "monitor_transport_failures_total",
            host="cinder", reason="circuit-open") == 1
        assert obs.metrics.counter_value(
            "monitor_breaker_state", host="cinder") == \
            BreakerState.GAUGE[BreakerState.OPEN]

    def test_breaker_half_opens_after_recovery_and_closes_on_success(self):
        cloud, transport, obs = self._cloud_and_transport(
            policy=RetryPolicy(max_attempts=1),
            failure_threshold=1, recovery_time=30.0)
        cloud.network.inject_fault("cinder", FailN(1))
        probe = self._probe(cloud)
        transport.send(probe)  # fails, opens
        assert transport.breaker_states()["cinder"] == BreakerState.OPEN
        obs.clock.advance(30.0)
        response = transport.send(probe)  # trial; fault is spent -> 200
        assert response.status_code == 200
        assert transport.breaker_states()["cinder"] == BreakerState.CLOSED


class TestTransportEvents:
    def _cloud_and_transport(self, **kwargs):
        return TestResilientTransport._cloud_and_transport(self, **kwargs)

    def _probe(self, cloud):
        return TestResilientTransport._probe(self, cloud)

    def test_retries_emit_events_with_attempt_and_delay(self):
        cloud, transport, obs = self._cloud_and_transport(
            policy=RetryPolicy(max_attempts=3, base_delay=0.01,
                               jitter=0.0))
        cloud.network.inject_fault("cinder", FailN(2))
        transport.send(self._probe(cloud))
        events = obs.events.filter(event="transport_retry", host="cinder")
        assert [event.get("attempt") for event in events] == [1, 2]
        assert events[0].get("delay") == pytest.approx(0.01)

    def test_give_up_emits_event_with_reason(self):
        cloud, transport, obs = self._cloud_and_transport(
            policy=RetryPolicy(max_attempts=2, base_delay=0.01))
        cloud.network.inject_fault("cinder", FailN(99))
        transport.send(self._probe(cloud))
        (event,) = obs.events.filter(event="transport_give_up")
        assert event.get("host") == "cinder"
        assert event.get("reason") == "retries-exhausted"
        assert event.get("attempts") == 2

    def test_breaker_lifecycle_emits_transition_events(self):
        cloud, transport, obs = self._cloud_and_transport(
            policy=RetryPolicy(max_attempts=1),
            failure_threshold=1, recovery_time=30.0)
        cloud.network.inject_fault("cinder", FailN(1))
        probe = self._probe(cloud)
        transport.send(probe)          # fails -> closed to open
        obs.clock.advance(30.0)
        transport.send(probe)          # trial succeeds: half-open, closed
        transitions = [
            (event.get("from_state"), event.get("to_state"))
            for event in obs.events.filter(event="breaker_transition",
                                           host="cinder")]
        assert transitions == [("closed", "open"),
                               ("open", "half-open"),
                               ("half-open", "closed")]

    def test_steady_state_emits_no_transition_events(self):
        cloud, transport, obs = self._cloud_and_transport()
        probe = self._probe(cloud)
        transport.send(probe)
        transport.send(probe)
        assert obs.events.filter(event="breaker_transition") == []

    def test_transport_events_inherit_the_correlation_context(self):
        cloud, transport, obs = self._cloud_and_transport(
            policy=RetryPolicy(max_attempts=2, base_delay=0.01))
        cloud.network.inject_fault("cinder", FailN(1))
        with obs.events.correlate("t-000042"):
            transport.send(self._probe(cloud))
        (event,) = obs.events.filter(event="transport_retry")
        assert event.trace_id == "t-000042"


def _resilient_monitor(cloud, policy=None, **kwargs):
    obs = Observability(clock=ManualClock())
    transport = ResilientTransport(
        cloud.network,
        policy=policy or RetryPolicy(max_attempts=2, base_delay=0.01),
        **kwargs)
    monitor = CloudMonitor.for_service("cinder", cloud.network, "myProject",
                                       enforcing=True, observability=obs,
                                       transport=transport)
    cloud.network.register("cmonitor", monitor.app)
    return monitor


class TestMonitorDegradation:
    def test_probe_failure_yields_indeterminate_not_exception(self):
        cloud = PrivateCloud.paper_setup(volume_quota=3)
        monitor = _resilient_monitor(cloud)
        cloud.network.inject_fault("cinder", FailN(99))
        cloud.network.inject_fault("keystone", FailN(99))
        token = cloud.keystone.issue_token("alice", "alice-secret",
                                           "myProject")
        response = cloud.client(token).get(MONITOR)
        assert response.status_code == 503
        verdict = monitor.log[-1]
        assert verdict.verdict == Verdict.INDETERMINATE
        assert verdict.indeterminate
        assert not verdict.violation
        assert not verdict.forwarded
        assert verdict.unbound_roots  # names the roots that failed
        assert response.json()["monitor"]["verdict"] == "indeterminate"
        assert monitor.obs.metrics.counter_value(
            "monitor_indeterminate_total") == 1

    def test_indeterminate_does_not_move_coverage(self):
        cloud = PrivateCloud.paper_setup(volume_quota=3)
        monitor = _resilient_monitor(cloud)
        cloud.network.inject_fault("cinder", FailN(99))
        cloud.network.inject_fault("keystone", FailN(99))
        token = cloud.keystone.issue_token("alice", "alice-secret",
                                           "myProject")
        cloud.client(token).get(MONITOR)
        assert monitor.log[-1].indeterminate
        # An unknowable outcome must not mark any requirement exercised,
        # passed, or failed.
        for record in monitor.coverage.records.values():
            assert record.exercised == 0
            assert record.passed == 0
            assert record.failed == 0

    def test_recoverable_fault_keeps_normal_verdicts(self):
        from repro.httpsim import by_path

        cloud = PrivateCloud.paper_setup(volume_quota=3)
        monitor = _resilient_monitor(cloud)
        cloud.network.inject_fault("cinder", FailN(1, key=by_path))
        cloud.network.inject_fault("keystone", FailN(1, key=by_path))
        token = cloud.keystone.issue_token("alice", "alice-secret",
                                           "myProject")
        response = cloud.client(token).get(MONITOR)
        assert response.status_code == 200
        assert monitor.log[-1].verdict == Verdict.VALID

    def test_forward_failure_yields_indeterminate(self):
        from repro.httpsim import OnRequest

        cloud = PrivateCloud.paper_setup(volume_quota=3)
        monitor = _resilient_monitor(cloud)

        def is_post(request):
            return request.method == "POST"

        cloud.network.inject_fault("cinder", OnRequest(is_post, FailN(99)))
        token = cloud.keystone.issue_token("alice", "alice-secret",
                                           "myProject")
        response = cloud.client(token).post(
            MONITOR, {"volume": {"name": "v", "size": 1}})
        assert response.status_code == 503
        verdict = monitor.log[-1]
        assert verdict.verdict == Verdict.INDETERMINATE
        assert verdict.pre_holds is True  # probes worked; forward died
        assert "forward failed" in verdict.message
        # The cloud never saw the POST (faults short-circuit pre-app).
        assert cloud.cinder.volumes.where(project_id="myProject") == []

    def test_probe_failure_raises_probe_failure_for_direct_use(self):
        cloud = PrivateCloud.paper_setup(volume_quota=3)
        monitor = _resilient_monitor(cloud)
        cloud.network.inject_fault("cinder", FailN(99))
        token = cloud.keystone.issue_token("alice", "alice-secret",
                                           "myProject")
        with pytest.raises(ProbeFailure):
            monitor.provider._get(
                token, "http://cinder/v3/myProject/volumes")
