"""Tests for security-requirement coverage tracking."""

from repro.core import CoverageTracker


class TestCoverageTracker:
    def test_empty_tracker_full_coverage(self):
        assert CoverageTracker().coverage == 1.0

    def test_declared_but_unexercised(self):
        tracker = CoverageTracker(["1.1", "1.2"])
        assert tracker.coverage == 0.0
        assert tracker.uncovered_ids() == ["1.1", "1.2"]

    def test_record_marks_covered(self):
        tracker = CoverageTracker(["1.1", "1.2"])
        tracker.record(["1.1"], passed=True)
        assert tracker.covered_ids() == ["1.1"]
        assert tracker.uncovered_ids() == ["1.2"]
        assert tracker.coverage == 0.5

    def test_record_counts(self):
        tracker = CoverageTracker(["1.4"])
        tracker.record(["1.4"], passed=True)
        tracker.record(["1.4"], passed=False)
        tracker.record(["1.4"], passed=True)
        record = tracker.records["1.4"]
        assert record.exercised == 3
        assert record.passed == 2
        assert record.failed == 1

    def test_record_undeclared_requirement(self):
        tracker = CoverageTracker(["1.1"])
        tracker.record(["9.9"], passed=True)
        assert "9.9" in tracker.records
        assert tracker.coverage == 0.5  # 1 of 2 now covered

    def test_record_multiple_at_once(self):
        tracker = CoverageTracker(["1.1", "1.2", "1.3"])
        tracker.record(["1.1", "1.3"], passed=True)
        assert tracker.covered_ids() == ["1.1", "1.3"]

    def test_report_contains_rows(self):
        tracker = CoverageTracker(["1.1"])
        tracker.record(["1.1"], passed=False)
        report = tracker.report()
        assert "1.1" in report
        assert "coverage: 100%" in report

    def test_reset_keeps_declared_ids(self):
        tracker = CoverageTracker(["1.1"])
        tracker.record(["1.1"], passed=True)
        tracker.reset()
        assert tracker.coverage == 0.0
        assert "1.1" in tracker.records

    def test_full_coverage_percentage(self):
        tracker = CoverageTracker(["a", "b"])
        tracker.record(["a"], passed=True)
        tracker.record(["b"], passed=True)
        assert tracker.coverage == 1.0
