"""Tests for the monitor's local mirror database (the models.py analogue)."""

import pytest

from repro.cloud import PrivateCloud
from repro.core import CloudMonitor, MirrorDatabase, cinder_resource_model
from repro.uml import Trigger

MONITOR = "http://cmonitor/cmonitor/volumes"


@pytest.fixture()
def mirror():
    return MirrorDatabase(cinder_resource_model())


class TestMirrorSchema:
    def test_tables_for_normal_resources_only(self, mirror):
        assert set(mirror.tables) == {
            "project", "volume", "quota_sets", "usergroup"}

    def test_columns_from_model(self, mirror):
        assert set(mirror.tables["volume"].columns) == {
            "id", "name", "status", "size"}

    def test_table_lookup_case_insensitive(self, mirror):
        assert mirror.table("Volume") is mirror.tables["volume"]
        assert mirror.table("ghost") is None

    def test_collection_lookup_returns_none(self, mirror):
        # Collections have no table; their members do.
        assert mirror.table("Volumes") is None


class TestObserve:
    def test_item_upsert_from_wrapped_body(self, mirror):
        mirror.observe(Trigger("GET", "volume"),
                       {"volume": {"id": "v1", "status": "available",
                                   "size": 2, "extra": "dropped"}})
        row = mirror.tables["volume"].get("v1")
        assert row["status"] == "available"
        assert "extra" not in row

    def test_collection_upsert(self, mirror):
        mirror.observe(Trigger("GET", "volumes"),
                       {"volumes": [{"id": "v1"}, {"id": "v2"}]})
        assert len(mirror.tables["volume"]) == 2

    def test_delete_removes(self, mirror):
        mirror.observe(Trigger("POST", "volumes"),
                       {"volume": {"id": "v1"}})
        mirror.observe(Trigger("DELETE", "volume"), None, item_id="v1")
        assert mirror.tables["volume"].get("v1") is None

    def test_delete_unknown_is_noop(self, mirror):
        mirror.observe(Trigger("DELETE", "volume"), None, item_id="ghost")

    def test_document_without_id_ignored(self, mirror):
        mirror.observe(Trigger("GET", "volume"), {"volume": {"size": 3}})
        assert len(mirror.tables["volume"]) == 0

    def test_unknown_resource_ignored(self, mirror):
        mirror.observe(Trigger("GET", "flavor"), {"flavor": {"id": "f1"}})

    def test_bare_document_accepted(self, mirror):
        mirror.observe(Trigger("GET", "volume"),
                       {"id": "v9", "status": "available"})
        assert mirror.tables["volume"].get("v9")["status"] == "available"

    def test_upsert_overwrites(self, mirror):
        mirror.observe(Trigger("GET", "volume"),
                       {"volume": {"id": "v1", "status": "available"}})
        mirror.observe(Trigger("GET", "volume"),
                       {"volume": {"id": "v1", "status": "in-use"}})
        assert mirror.tables["volume"].get("v1")["status"] == "in-use"
        assert len(mirror.tables["volume"]) == 1

    def test_non_dict_body_ignored(self, mirror):
        mirror.observe(Trigger("GET", "volume"), "plain text")
        mirror.observe(Trigger("GET", "volume"), None)
        assert len(mirror.tables["volume"]) == 0


class TestMonitorIntegration:
    @pytest.fixture()
    def setup(self):
        cloud = PrivateCloud.paper_setup()
        tokens = cloud.paper_tokens()
        monitor = CloudMonitor.for_cinder(cloud.network, "myProject",
                                          with_mirror=True)
        cloud.network.register("cmonitor", monitor.app)
        clients = {name: cloud.client(token)
                   for name, token in tokens.items()}
        return cloud, monitor, clients

    def test_create_populates_mirror(self, setup):
        cloud, monitor, clients = setup
        response = clients["bob"].post(MONITOR, {"volume": {"name": "m1",
                                                            "size": 3}})
        volume_id = response.json()["volume"]["id"]
        row = monitor.mirror.tables["volume"].get(volume_id)
        assert row["name"] == "m1"
        assert row["size"] == 3
        assert row["status"] == "available"

    def test_delete_clears_mirror(self, setup):
        cloud, monitor, clients = setup
        volume_id = clients["bob"].post(
            MONITOR, {"volume": {}}).json()["volume"]["id"]
        clients["alice"].delete(f"{MONITOR}/{volume_id}")
        assert monitor.mirror.tables["volume"].get(volume_id) is None

    def test_blocked_request_does_not_touch_mirror(self, setup):
        cloud, monitor, clients = setup
        clients["carol"].post(MONITOR, {"volume": {"name": "x"}})  # 412
        assert len(monitor.mirror.tables["volume"]) == 0

    def test_collection_get_refreshes_mirror(self, setup):
        cloud, monitor, clients = setup
        clients["bob"].post(MONITOR, {"volume": {}})
        clients["bob"].post(MONITOR, {"volume": {}})
        monitor.mirror.tables["volume"].rows.clear()
        clients["carol"].get(MONITOR)
        assert len(monitor.mirror.tables["volume"]) == 2

    def test_mirror_disabled_by_default(self):
        cloud = PrivateCloud.paper_setup()
        monitor = CloudMonitor.for_cinder(cloud.network, "myProject")
        assert monitor.mirror is None
