"""Tests for the uml2django code generator (Listings 2 and 3)."""

import ast
import os

import pytest

from repro.errors import GenerationError
from repro.core import cinder_behavior_model, cinder_resource_model
from repro.core.codegen import (
    generate_models,
    generate_project,
    generate_urls,
    generate_views,
)
from repro.core.codegen.cli import main as uml2django_main
from repro.rbac import SecurityRequirementsTable
from repro.uml import write_xmi_file


@pytest.fixture(scope="module")
def diagram():
    return cinder_resource_model()


@pytest.fixture(scope="module")
def machine():
    return cinder_behavior_model()


class TestModelsGeneration:
    def test_parses_as_python(self, diagram):
        source = generate_models(diagram)
        ast.parse(source)

    def test_one_class_per_resource(self, diagram):
        source = generate_models(diagram)
        for expected in ("class Projects(", "class Project(",
                         "class Volumes(", "class Volume(",
                         "class QuotaSets(", "class Usergroup("):
            assert expected in source

    def test_field_types_mapped(self, diagram):
        source = generate_models(diagram)
        assert "models.IntegerField()" in source       # volume.size
        assert "models.CharField(max_length=255)" in source

    def test_id_becomes_natural_key(self, diagram):
        source = generate_models(diagram)
        assert "natural_id = models.CharField(max_length=255, unique=True)" \
            in source

    def test_associations_become_foreign_keys(self, diagram):
        source = generate_models(diagram)
        assert "models.ForeignKey" in source
        assert "related_name='volumes'" in source

    def test_collection_without_members_gets_pass(self):
        from repro.core import ResourceModelBuilder

        lonely = (ResourceModelBuilder("d")
                  .collection("Things")
                  .build(validate=False))
        source = generate_models(lonely)
        assert "    pass" in source


class TestUrlsGeneration:
    def test_parses_as_python(self, diagram, machine):
        ast.parse(generate_urls(diagram, machine))

    def test_listing3_layout(self, diagram, machine):
        source = generate_urls(diagram, machine)
        assert "urlpatterns = [" in source
        assert "url(r'^cmonitor/volumes$', views.volumes" in source
        assert "url(r'^cmonitor/volumes/(?P<volume_id>[^/]+)$', " \
               "views.volume" in source

    def test_custom_mount(self, diagram, machine):
        source = generate_urls(diagram, machine, mount="monitor")
        assert "^monitor/volumes$" in source


class TestViewsGeneration:
    def test_parses_as_python(self, diagram, machine):
        ast.parse(generate_views(diagram, machine))

    def test_listing2_dispatcher(self, diagram, machine):
        source = generate_views(diagram, machine)
        assert "def volume(request, volume_id):" in source
        assert "HttpResponseNotAllowed" in source
        assert 'if request.method == "DELETE":' in source
        assert "return volume_delete(request, volume_id)" in source

    def test_listing2_delete_view(self, diagram, machine):
        source = generate_views(
            diagram, machine, cloud_base="http://cinder/v3/myProject")
        assert "def volume_delete(request, volume_id):" in source
        assert "url = 'http://cinder/v3/myProject/volumes/%s' % " \
               "(volume_id,)" in source
        assert "RequestWithMethod(url, method='DELETE'" in source
        assert "response.code not in (204,)" in source

    def test_contract_constants_embedded(self, diagram, machine):
        source = generate_views(diagram, machine)
        assert "PRE_DELETE_VOLUME" in source
        assert "POST_DELETE_VOLUME" in source
        assert "pre(" in source  # old values in the post-condition

    def test_security_requirement_variables(self, diagram, machine):
        # Step 4 of the views.py population.
        source = generate_views(diagram, machine)
        assert "SECURITY_REQUIREMENTS = ['1.4']" in source
        assert "SECURITY_REQUIREMENTS = ['1.3']" in source

    def test_skeleton_markers_present(self, diagram, machine):
        source = generate_views(diagram, machine)
        assert "TODO" in source

    def test_embedded_contracts_are_valid_ocl(self, diagram, machine):
        from repro.ocl import parse as parse_ocl

        source = generate_views(diagram, machine)
        module = ast.parse(source)
        ocl_constants = [
            node.value.value for node in ast.walk(module)
            if isinstance(node, ast.Assign)
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id.startswith(("PRE_", "POST_"))
        ]
        assert len(ocl_constants) == 10  # 5 triggers x pre+post
        for text in ocl_constants:
            parse_ocl(text)


class TestProjectAssembly:
    def test_file_tree(self, diagram, machine):
        project = generate_project("cm", diagram, machine)
        assert "cm/models.py" in project
        assert "cm/urls.py" in project
        assert "cm/views.py" in project
        assert "cm/settings.py" in project
        assert "manage.py" in project
        assert "contracts.ocl" in project

    def test_table_render_included(self, diagram, machine):
        project = generate_project(
            "cm", diagram, machine,
            table=SecurityRequirementsTable.paper_table())
        assert "security_requirements.txt" in project
        assert "proj_administrator" in project["security_requirements.txt"]

    def test_contracts_file_has_all_methods(self, diagram, machine):
        project = generate_project("cm", diagram, machine)
        contracts = project["contracts.ocl"]
        for method in ("GET", "PUT", "POST", "DELETE"):
            assert f"PreCondition({method}(" in contracts

    def test_invalid_project_name(self, diagram, machine):
        with pytest.raises(GenerationError):
            generate_project("not a name", diagram, machine)

    def test_write_to_disk(self, diagram, machine, tmp_path):
        project = generate_project("cm", diagram, machine)
        project.write_to(str(tmp_path))
        assert (tmp_path / "cm" / "views.py").exists()
        assert (tmp_path / "manage.py").exists()

    def test_len_and_contains(self, diagram, machine):
        project = generate_project("cm", diagram, machine)
        assert len(project) == 7
        assert "nothing.py" not in project


class TestCodegenOnOtherScenarios:
    """The generator is model-agnostic: it emits for any scenario."""

    def test_nova_models_generate(self):
        from repro.core.nova_scenario import (
            nova_behavior_model,
            nova_resource_model,
        )

        project = generate_project("novamon", nova_resource_model(),
                                   nova_behavior_model(),
                                   cloud_base="http://nova/v3/myProject")
        views = project["novamon/views.py"]
        ast.parse(views)
        assert "def server_delete(request, server_id):" in views
        assert "SECURITY_REQUIREMENTS = ['2.3']" in views

    def test_keystone_models_generate(self):
        from repro.core.keystone_scenario import (
            keystone_behavior_model,
            keystone_resource_model,
        )

        project = generate_project("idmon", keystone_resource_model(),
                                   keystone_behavior_model(),
                                   cloud_base="http://keystone/v3")
        views = project["idmon/views.py"]
        ast.parse(views)
        assert "def projects_post(request):" in views
        assert "def project_delete(request, project_id):" in views

    def test_release2_models_generate(self):
        project = generate_project(
            "cm2",
            cinder_resource_model(with_snapshots=True),
            cinder_behavior_model(with_snapshots=True))
        views = project["cm2/views.py"]
        ast.parse(views)
        assert "volume.snapshots->size() = 0" in views


class TestCommandLine:
    def test_paper_invocation(self, diagram, machine, tmp_path):
        # uml2django ProjectName DiagramsFileinXML
        xmi_path = os.path.join(str(tmp_path), "cinder.xmi")
        write_xmi_file(xmi_path, diagram, machine)
        exit_code = uml2django_main(
            ["cmonitor", xmi_path, "--output", str(tmp_path),
             "--paper-table"])
        assert exit_code == 0
        assert (tmp_path / "cmonitor" / "views.py").exists()
        assert (tmp_path / "security_requirements.txt").exists()

    def test_missing_file_fails(self, tmp_path):
        exit_code = uml2django_main(
            ["cmonitor", "/nonexistent.xmi", "--output", str(tmp_path)])
        assert exit_code == 1

    def test_slice_option(self, diagram, machine, tmp_path):
        xmi_path = os.path.join(str(tmp_path), "cinder.xmi")
        write_xmi_file(xmi_path, diagram, machine)
        exit_code = uml2django_main(
            ["cm", xmi_path, "--output", str(tmp_path),
             "--slice", "volume"])
        assert exit_code == 0
        with open(tmp_path / "cm" / "models.py", encoding="utf-8") as handle:
            models = handle.read()
        # quota_sets is not on the volume URI path: sliced away.
        assert "class QuotaSets" not in models
        assert "class Volume(" in models

    def test_slice_unknown_resource_fails(self, diagram, machine, tmp_path):
        xmi_path = os.path.join(str(tmp_path), "cinder.xmi")
        write_xmi_file(xmi_path, diagram, machine)
        exit_code = uml2django_main(
            ["cm", xmi_path, "--output", str(tmp_path), "--slice", "ghost"])
        assert exit_code == 1

    def test_xmi_without_machine_fails(self, diagram, tmp_path):
        xmi_path = os.path.join(str(tmp_path), "partial.xmi")
        write_xmi_file(xmi_path, diagram, None)
        exit_code = uml2django_main(["cm", xmi_path, "--output",
                                     str(tmp_path)])
        assert exit_code == 1

    def test_generated_views_drive_real_monitor(self, diagram, machine,
                                                tmp_path):
        """End-to-end: XMI -> codegen -> the contracts in the generated
        views.py are the same the runnable monitor enforces."""
        from repro.core import ContractGenerator
        from repro.ocl import parse as parse_ocl, to_text

        source = generate_views(diagram, machine)
        module = ast.parse(source)
        constants = {
            node.targets[0].id: node.value.value
            for node in ast.walk(module)
            if isinstance(node, ast.Assign)
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id.startswith(("PRE_", "POST_"))
        }
        generator = ContractGenerator(machine, diagram)
        contract = generator.for_trigger("DELETE(volume)")
        assert parse_ocl(constants["PRE_DELETE_VOLUME"]) == \
            contract.precondition
        assert parse_ocl(constants["POST_DELETE_VOLUME"]) == \
            contract.postcondition
