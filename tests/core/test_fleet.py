"""Tests for the fleet dispatcher's API surface and merged views."""

import io
import json

import pytest

from repro.core import MonitorFleet, ShardRouter
from repro.errors import MonitorError
from repro.httpsim import Request
from repro.validation.chaos import fleet_setup
from repro.workloads import WorkloadRunner, make_workload

URL = "http://cmonitor/cmonitor/volumes"


def run_workload(fleet, cloud, count=12, seed=7):
    runner = WorkloadRunner(cloud)
    runner.execute(make_workload(count, seed=seed), monitored=True)


class TestConstruction:
    def test_rejects_zero_shards(self):
        with pytest.raises(MonitorError):
            ShardRouter(0)
        with pytest.raises(MonitorError):
            MonitorFleet([])

    def test_rejects_router_shard_mismatch(self):
        cloud, fleet = fleet_setup(shards=2)
        try:
            with pytest.raises(MonitorError):
                MonitorFleet(fleet.shards, router=ShardRouter(3))
        finally:
            fleet.close()

    def test_context_manager_closes_schedulers(self):
        cloud, fleet = fleet_setup(shards=2, fanout=4)
        with fleet:
            token = cloud.paper_tokens()["alice"]
            response = fleet.handle(
                Request("GET", URL, headers={"X-Auth-Token": token}))
            assert response.status_code == 200
        for monitor in fleet.shards:
            assert monitor.provider.scheduler is not None


class TestDispatch:
    def test_dispatched_counts_account_for_every_request(self):
        cloud, fleet = fleet_setup(shards=3)
        try:
            run_workload(fleet, cloud, count=12)
        finally:
            fleet.close()
        assert sum(fleet.dispatched) == 12
        assert len(fleet.log) == 12

    def test_shard_for_agrees_with_where_verdicts_land(self):
        cloud, fleet = fleet_setup(shards=3)
        try:
            tokens = cloud.paper_tokens()
            for token in tokens.values():
                request = Request("GET", URL,
                                  headers={"X-Auth-Token": token})
                expected = fleet.shard_for(request)
                before = len(fleet.shards[expected].log)
                fleet.handle(request)
                assert len(fleet.shards[expected].log) == before + 1
        finally:
            fleet.close()


class TestMergedViews:
    def test_stats_shape_and_totals(self):
        cloud, fleet = fleet_setup(shards=2)
        try:
            run_workload(fleet, cloud, count=10)
        finally:
            fleet.close()
        stats = fleet.stats()
        assert stats["shards"] == 2
        assert stats["requests"] == 10
        assert len(stats["per_shard"]) == 2
        assert sum(entry["verdicts"] for entry in stats["per_shard"]) == 10
        assert stats["violations"] == len(fleet.violations())

    def test_merged_metrics_sum_shard_counters(self):
        cloud, fleet = fleet_setup(shards=3)
        try:
            run_workload(fleet, cloud, count=12)
        finally:
            fleet.close()
        merged = fleet.merged_metrics()
        per_shard = sum(
            monitor.obs.metrics.total("monitor_requests_total")
            for monitor in fleet.shards)
        assert merged.total("monitor_requests_total") == per_shard > 0

    def test_slo_report_covers_the_merged_traffic(self):
        cloud, fleet = fleet_setup(shards=2)
        try:
            run_workload(fleet, cloud, count=10)
        finally:
            fleet.close()
        report = fleet.slo_report()
        assert report["slos"]
        assert report["overall"] in ("ok", "warning", "breached")


class TestBatchedPersistence:
    def test_flush_audit_writes_each_row_once_in_arrival_order(self):
        cloud, fleet = fleet_setup(shards=2)
        try:
            run_workload(fleet, cloud, count=8)
            first = io.StringIO()
            assert fleet.flush_audit(first) == 8
            # Nothing new: the cursor advanced.
            assert fleet.flush_audit(first) == 0
            run_workload(fleet, cloud, count=4, seed=11)
            second = io.StringIO()
            assert fleet.flush_audit(second) == 4
        finally:
            fleet.close()
        rows = first.getvalue().splitlines()
        assert len(rows) == 8
        ids = [json.loads(row)["correlation_id"] for row in rows]
        assert ids == sorted(ids)

    def test_flush_audit_appends_to_a_path(self, tmp_path):
        cloud, fleet = fleet_setup(shards=2)
        destination = tmp_path / "audit.jsonl"
        try:
            run_workload(fleet, cloud, count=6)
            fleet.flush_audit(str(destination))
            run_workload(fleet, cloud, count=3, seed=11)
            fleet.flush_audit(str(destination))
        finally:
            fleet.close()
        lines = destination.read_text().splitlines()
        assert len(lines) == 9

    def test_flush_events_tags_records_with_their_shard(self):
        cloud, fleet = fleet_setup(shards=2)
        try:
            run_workload(fleet, cloud, count=8)
            sink = io.StringIO()
            written = fleet.flush_events(sink)
            assert written > 0
            assert fleet.flush_events(sink) == 0
        finally:
            fleet.close()
        shards_seen = set()
        for line in sink.getvalue().splitlines():
            payload = json.loads(line)
            assert payload["shard"] in (0, 1)
            shards_seen.add(payload["shard"])
        assert shards_seen == {0, 1}
