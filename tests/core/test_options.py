"""Typed monitor options and the one-release deprecation of the
ad-hoc ``fanout=`` / ``probe_cache=`` keywords."""

import warnings

import pytest

from repro.cloud import PrivateCloud
from repro.core import (
    CloudMonitor,
    MonitorFleet,
    MonitorOptions,
    ResilienceOptions,
    RetryPolicy,
    resolve_options,
)
from repro.core.resilience import ResilientTransport
from repro.errors import MonitorError


class TestResilienceOptions:
    def test_defaults_mirror_retry_policy(self):
        built, stock = ResilienceOptions().retry_policy(), RetryPolicy()
        for field in ("max_attempts", "base_delay", "multiplier",
                      "max_delay", "jitter", "seed"):
            assert getattr(built, field) == getattr(stock, field)

    def test_from_policy_round_trips(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.2, seed=11)
        options = ResilienceOptions.from_policy(policy,
                                                failure_threshold=2)
        assert options.max_attempts == 5
        assert options.base_delay == 0.2
        assert options.retry_policy().seed == 11
        assert options.failure_threshold == 2

    def test_build_transport(self):
        cloud = PrivateCloud.paper_setup()
        transport = ResilienceOptions(seed=11).build_transport(
            cloud.network)
        assert isinstance(transport, ResilientTransport)
        assert transport.policy.seed == 11


class TestMonitorOptions:
    def test_defaults(self):
        options = MonitorOptions()
        assert options.enforcing is True
        assert options.probe_planning is True
        assert options.fanout == 1
        assert options.probe_cache is False
        assert options.resilience is None

    def test_fanout_floor_enforced(self):
        with pytest.raises(MonitorError):
            MonitorOptions(fanout=0)


class TestResolveOptions:
    def test_no_arguments_is_defaults_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_options() == MonitorOptions()

    def test_first_class_keywords_never_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolved = resolve_options(enforcing=False,
                                       probe_planning=False)
        assert resolved.enforcing is False
        assert resolved.probe_planning is False

    def test_probe_cache_false_never_warns(self):
        # False is the default value, not a request for a cache; legacy
        # call sites passing it explicitly must stay silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolved = resolve_options(probe_cache=False)
        assert resolved.probe_cache is False

    def test_fanout_keyword_warns_and_folds(self):
        with pytest.warns(DeprecationWarning, match="fanout"):
            resolved = resolve_options(fanout=3)
        assert resolved.fanout == 3

    def test_probe_cache_keyword_warns_and_folds(self):
        with pytest.warns(DeprecationWarning, match="probe_cache"):
            resolved = resolve_options(probe_cache=True)
        assert resolved.probe_cache is True

    def test_keywords_override_the_base_options(self):
        base = MonitorOptions(enforcing=False, fanout=2)
        with pytest.warns(DeprecationWarning):
            resolved = resolve_options(base, fanout=4)
        assert resolved.fanout == 4
        assert resolved.enforcing is False  # untouched fields survive


class TestConstructorDeprecations:
    def test_monitor_accepts_options_silently(self):
        cloud = PrivateCloud.paper_setup()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            monitor = CloudMonitor.for_service(
                "cinder", cloud.network, "myProject",
                options=MonitorOptions(enforcing=False, fanout=2))
        assert monitor.fanout == 2
        monitor.close()

    def test_monitor_fanout_keyword_warns(self):
        cloud = PrivateCloud.paper_setup()
        with pytest.warns(DeprecationWarning, match="fanout"):
            monitor = CloudMonitor.for_service(
                "cinder", cloud.network, "myProject", fanout=2)
        assert monitor.fanout == 2
        monitor.close()

    def test_fleet_probe_cache_keyword_warns(self):
        cloud = PrivateCloud.paper_setup()
        with pytest.warns(DeprecationWarning, match="probe_cache"):
            fleet = MonitorFleet.for_service(
                "cinder", cloud.network, "myProject", shards=2,
                probe_cache=True)
        fleet.close()

    def test_fleet_options_propagate_to_every_shard(self):
        cloud = PrivateCloud.paper_setup()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            fleet = MonitorFleet.for_service(
                "cinder", cloud.network, "myProject", shards=3,
                options=MonitorOptions(enforcing=False, fanout=2))
        assert [shard.fanout for shard in fleet.shards] == [2, 2, 2]
        assert all(not shard.enforcing for shard in fleet.shards)
        fleet.close()
