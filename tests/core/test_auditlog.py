"""Tests for audit-log persistence and the cached-identity provider."""

import io
import json

import pytest

from repro.cloud import PrivateCloud, paper_mutants
from repro.core import CloudMonitor, read_log, write_log
from repro.core.auditlog import verdict_from_json, verdict_to_json
from repro.core.monitor import CloudStateProvider, MonitorVerdict
from repro.uml import Trigger
from repro.errors import MonitorError
from repro.validation import TestOracle, default_setup, localize

MONITOR = "http://cmonitor/cmonitor/volumes"


def run_session(mutant=None):
    cloud, monitor = default_setup()
    if mutant is not None:
        mutant.apply(cloud)
    TestOracle(cloud, monitor).run()
    return monitor


class TestRoundTrip:
    def test_single_verdict_round_trip(self):
        monitor = run_session()
        original = monitor.log[0]
        restored = verdict_from_json(verdict_to_json(original))
        assert restored.trigger == original.trigger
        assert restored.verdict == original.verdict
        assert restored.security_requirements == \
            original.security_requirements
        assert restored.snapshot_bytes == original.snapshot_bytes

    def test_file_round_trip(self, tmp_path):
        monitor = run_session()
        target = str(tmp_path / "audit.jsonl")
        count = write_log(monitor.log, target)
        assert count == len(monitor.log)
        restored = read_log(target)
        assert [v.verdict for v in restored] == \
            [v.verdict for v in monitor.log]

    def test_stream_round_trip(self):
        monitor = run_session()
        buffer = io.StringIO()
        write_log(monitor.log, buffer)
        buffer.seek(0)
        restored = read_log(buffer)
        assert len(restored) == len(monitor.log)

    def test_append_mode_accumulates(self, tmp_path):
        monitor = run_session()
        target = tmp_path / "audit.jsonl"
        with open(target, "a", encoding="utf-8") as handle:
            write_log(monitor.log[:2], handle)
            write_log(monitor.log[2:4], handle)
        assert len(read_log(str(target))) == 4

    def test_blank_lines_skipped(self):
        monitor = run_session()
        buffer = io.StringIO(verdict_to_json(monitor.log[0]) + "\n\n\n")
        assert len(read_log(buffer)) == 1

    def test_malformed_line_raises(self):
        with pytest.raises(MonitorError):
            verdict_from_json("{not json")
        with pytest.raises(MonitorError):
            verdict_from_json('{"operation": "nonsense"}')

    def test_snapshot_bytes_round_trip_exact(self):
        monitor = run_session()
        for original in monitor.log:
            restored = verdict_from_json(verdict_to_json(original))
            assert restored.snapshot_bytes == original.snapshot_bytes
        assert any(v.snapshot_bytes > 0 for v in monitor.log)

    def test_non_ascii_reason_round_trip(self):
        verdict = MonitorVerdict(
            trigger=Trigger("POST", "volumes"),
            verdict="pre-blocked",
            pre_holds=False,
            forwarded=False,
            response_status=None,
            post_holds=None,
            message="quota dépassée — объём ≥ 5 ✗",
            security_requirements=["SR1"],
            snapshot_bytes=0,
        )
        line = verdict_to_json(verdict)
        restored = verdict_from_json(line)
        assert restored.message == "quota dépassée — объём ≥ 5 ✗"
        # The wire format stays valid JSONL whatever the encoding path.
        restored_again = verdict_from_json(
            line.encode("utf-8").decode("utf-8"))
        assert restored_again.message == restored.message

    def test_correlation_id_round_trip(self):
        monitor = run_session()
        for original in monitor.log:
            assert original.correlation_id is not None
            restored = verdict_from_json(verdict_to_json(original))
            assert restored.correlation_id == original.correlation_id

    def test_legacy_line_without_correlation_id(self):
        monitor = run_session()
        record = json.loads(verdict_to_json(monitor.log[0]))
        del record["correlation_id"]
        restored = verdict_from_json(json.dumps(record))
        assert restored.correlation_id is None
        assert restored.verdict == monitor.log[0].verdict

    def test_file_round_trip_preserves_correlation_ids(self, tmp_path):
        monitor = run_session()
        target = str(tmp_path / "audit.jsonl")
        write_log(monitor.log, target)
        restored = read_log(target)
        assert [v.correlation_id for v in restored] == \
            [v.correlation_id for v in monitor.log]

    def test_loaded_log_feeds_localizer(self, tmp_path):
        monitor = run_session(mutant=paper_mutants()[0])
        target = str(tmp_path / "audit.jsonl")
        write_log(monitor.log, target)
        diagnoses = localize(read_log(target))
        assert diagnoses
        assert diagnoses[0].action == "volume:delete"


class TestIdentityCache:
    def test_cache_reduces_probe_count(self):
        cloud = PrivateCloud.paper_setup()
        token = cloud.paper_tokens()["bob"]
        cached = CloudStateProvider(cloud.network, "myProject",
                                    cache_identity=True)
        uncached = CloudStateProvider(cloud.network, "myProject")
        for provider in (cached, uncached):
            provider.bindings(token)
            provider.bindings(token)
        assert cached.probe_count == uncached.probe_count - 1

    def test_cached_identity_correct(self):
        cloud = PrivateCloud.paper_setup()
        token = cloud.paper_tokens()["alice"]
        provider = CloudStateProvider(cloud.network, "myProject",
                                      cache_identity=True)
        first = provider.bindings(token)["user"]
        second = provider.bindings(token)["user"]
        assert first == second
        assert second["roles"] == ["admin"]

    def test_invalidate_forces_reprobe(self):
        cloud = PrivateCloud.paper_setup()
        token = cloud.paper_tokens()["bob"]
        provider = CloudStateProvider(cloud.network, "myProject",
                                      cache_identity=True)
        provider.bindings(token)
        count_after_first = provider.probe_count
        provider.invalidate_identity_cache()
        provider.bindings(token)
        assert provider.probe_count == count_after_first + 4

    def test_cache_does_not_mask_role_changes_after_invalidation(self):
        cloud = PrivateCloud.paper_setup()
        token = cloud.paper_tokens()["carol"]
        provider = CloudStateProvider(cloud.network, "myProject",
                                      cache_identity=True)
        assert provider.bindings(token)["user"]["roles"] == ["user"]
        cloud.keystone.rbac.assign("member", "myProject", user_id="carol")
        # Stale until invalidated -- the documented contract.
        assert provider.bindings(token)["user"]["roles"] == ["user"]
        provider.invalidate_identity_cache()
        assert provider.bindings(token)["user"]["roles"] == [
            "member", "user"]

    def test_monitored_session_with_cache_is_equivalent(self):
        cloud = PrivateCloud.paper_setup()
        monitor = CloudMonitor.for_cinder(cloud.network, "myProject",
                                          enforcing=False)
        monitor.provider.cache_identity = True
        cloud.network.register("cmonitor", monitor.app)
        oracle = TestOracle(cloud, monitor)
        oracle.run()
        assert monitor.violations() == []
        assert monitor.coverage.coverage == 1.0
