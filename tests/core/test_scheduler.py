"""Tests for the probe scheduler: SingleFlight and ProbeScheduler."""

import threading

import pytest

from repro.core import ProbeOutcome, ProbeScheduler, SingleFlight
from repro.core.resilience import ProbeFailure
from repro.obs import Observability
from repro.obs.clock import ManualClock


class TestSingleFlight:
    def test_computes_once_per_key(self):
        cache = SingleFlight()
        calls = []
        for _ in range(3):
            value = cache.do("k", lambda: calls.append(1) or "answer")
        assert value == "answer"
        assert len(calls) == 1
        assert cache.shared_count == 2

    def test_distinct_keys_compute_independently(self):
        cache = SingleFlight()
        assert cache.do("a", lambda: 1) == 1
        assert cache.do("b", lambda: 2) == 2
        assert len(cache) == 2
        assert cache.shared_count == 0

    def test_failure_propagates_but_is_not_cached(self):
        cache = SingleFlight()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise ProbeFailure("boom")
            return "recovered"

        with pytest.raises(ProbeFailure):
            cache.do("k", flaky)
        # The failed flight was evicted: the next call retries.
        assert cache.do("k", flaky) == "recovered"
        assert len(attempts) == 2

    def test_waiters_share_the_leaders_computation(self):
        cache = SingleFlight()
        release = threading.Event()
        entered = threading.Event()
        results = []

        def slow_leader():
            entered.set()
            release.wait(timeout=5)
            return "shared"

        def lead():
            results.append(cache.do("k", slow_leader))

        def wait_and_share():
            entered.wait(timeout=5)
            results.append(cache.do("k", lambda: "never-called"))

        leader = threading.Thread(target=lead)
        waiter = threading.Thread(target=wait_and_share)
        leader.start()
        waiter.start()
        entered.wait(timeout=5)
        release.set()
        leader.join(timeout=5)
        waiter.join(timeout=5)
        assert results == ["shared", "shared"]
        assert cache.shared_count == 1

    def test_waiters_see_the_leaders_failure(self):
        cache = SingleFlight()
        release = threading.Event()
        entered = threading.Event()
        errors = []

        def failing_leader():
            entered.set()
            release.wait(timeout=5)
            raise ProbeFailure("leader died")

        def lead():
            try:
                cache.do("k", failing_leader)
            except ProbeFailure as exc:
                errors.append(("leader", str(exc)))

        def wait_on_flight():
            entered.wait(timeout=5)
            try:
                cache.do("k", lambda: "never-called")
            except ProbeFailure as exc:
                errors.append(("waiter", str(exc)))

        threads = [threading.Thread(target=lead),
                   threading.Thread(target=wait_on_flight)]
        for thread in threads:
            thread.start()
        entered.wait(timeout=5)
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert sorted(errors) == [("leader", "leader died"),
                                  ("waiter", "leader died")]


class TestProbeScheduler:
    def test_width_one_is_serial_on_the_calling_thread(self):
        scheduler = ProbeScheduler(width=1)
        thread_names = []
        outcomes = scheduler.map([
            lambda: thread_names.append(threading.current_thread().name),
            lambda: thread_names.append(threading.current_thread().name),
        ])
        assert not scheduler.concurrent
        assert scheduler.dispatched_count == 0
        assert all(outcome.ok for outcome in outcomes)
        assert thread_names == [threading.current_thread().name] * 2

    def test_outcomes_come_back_in_submission_order(self):
        # Task 0 finishes *last*; its outcome must still come first.
        with ProbeScheduler(width=4) as scheduler:
            gate = threading.Event()

            def slow():
                gate.wait(timeout=5)
                return "slow"

            def fast():
                gate.set()
                return "fast"

            outcomes = scheduler.map([slow, fast, lambda: "third"])
        assert [outcome.value for outcome in outcomes] == \
            ["slow", "fast", "third"]
        assert scheduler.dispatched_count == 3

    def test_probe_failure_is_a_normal_outcome(self):
        def doomed():
            raise ProbeFailure("unbound")

        with ProbeScheduler(width=2) as scheduler:
            outcomes = scheduler.map([doomed, lambda: "bound"])
        assert not outcomes[0].ok
        assert isinstance(outcomes[0].error, ProbeFailure)
        assert outcomes[1].ok and outcomes[1].value == "bound"

    def test_unexpected_exceptions_propagate(self):
        def broken():
            raise ValueError("a bug, not a probe failure")

        with ProbeScheduler(width=2) as scheduler:
            with pytest.raises(ValueError):
                scheduler.map([broken, lambda: "fine"])

    def test_single_task_runs_serially_even_when_concurrent(self):
        with ProbeScheduler(width=4) as scheduler:
            outcomes = scheduler.map([lambda: "only"])
        assert outcomes[0].value == "only"
        assert scheduler.dispatched_count == 0

    def test_workers_inherit_the_submitters_event_correlation(self):
        obs = Observability(clock=ManualClock())
        with ProbeScheduler(width=2, events=obs.events) as scheduler:
            with obs.events.correlate("t-000042"):
                scheduler.map([
                    lambda: obs.events.emit("probe_sent", host="a"),
                    lambda: obs.events.emit("probe_sent", host="b"),
                ])
        records = obs.events.filter(event="probe_sent")
        assert len(records) == 2
        assert {record.trace_id for record in records} == {"t-000042"}

    def test_close_is_idempotent_and_reusable(self):
        scheduler = ProbeScheduler(width=2)
        assert scheduler.map([lambda: 1, lambda: 2])[1].value == 2
        scheduler.close()
        scheduler.close()
        # A closed scheduler lazily re-creates its pool when used again.
        assert scheduler.map([lambda: 3, lambda: 4])[0].value == 3
        scheduler.close()

    def test_outcome_repr_reads_cleanly(self):
        assert "ok" in repr(ProbeOutcome(value=1))
        assert "failed" in repr(ProbeOutcome(error=ProbeFailure("x")))
