"""Tests for the identity (Keystone project administration) scenario."""

import pytest

from repro.cloud import PrivateCloud
from repro.core import ContractGenerator, Verdict, check_models
from repro.core.keystone_scenario import (
    MULTIPLE,
    SINGLE,
    keystone_behavior_model,
    keystone_resource_model,
    keystone_table,
    monitor_for_keystone,
)
from repro.uml.validation import errors_only, validate_state_machine

MONITOR = "http://imonitor/imonitor/projects"


@pytest.fixture()
def setup():
    cloud = PrivateCloud.paper_setup()
    tokens = cloud.paper_tokens()
    monitor = monitor_for_keystone(cloud.network, "myProject",
                                   enforcing=True)
    cloud.network.register("imonitor", monitor.app)
    clients = {name: cloud.client(token) for name, token in tokens.items()}
    return cloud, monitor, clients


class TestKeystoneModels:
    def test_well_formed(self):
        machine = keystone_behavior_model()
        diagram = keystone_resource_model()
        assert errors_only(validate_state_machine(machine, diagram)) == []
        assert check_models(diagram, machine) == []

    def test_states(self):
        machine = keystone_behavior_model()
        assert set(machine.states) == {SINGLE, MULTIPLE}
        assert machine.initial_state().name == SINGLE

    def test_no_delete_out_of_single_state(self):
        # The functional rule: the last project cannot be deleted.
        machine = keystone_behavior_model()
        deletes = machine.transitions_triggered_by("DELETE(project)")
        assert all(transition.source == MULTIPLE for transition in deletes)

    def test_requirements(self):
        machine = keystone_behavior_model()
        assert set(machine.security_requirement_ids()) == {
            "3.1", "3.2", "3.3"}

    def test_table_matches_keystone_policy(self):
        policy = keystone_table().to_policy()
        assert policy["project:post"] == "role:admin"
        assert policy["project:delete"] == "role:admin"


class TestKeystoneMonitor:
    def test_get_projects_all_roles(self, setup):
        cloud, monitor, clients = setup
        for name in ("alice", "bob", "carol"):
            assert clients[name].get(MONITOR).status_code == 200
        assert monitor.violations() == []

    def test_member_blocked_from_create(self, setup):
        cloud, monitor, clients = setup
        response = clients["bob"].post(MONITOR, {"project": {"name": "x"}})
        assert response.status_code == 412
        assert monitor.log[-1].verdict == Verdict.PRE_BLOCKED

    def test_admin_creates_and_deletes(self, setup):
        cloud, monitor, clients = setup
        created = clients["alice"].post(MONITOR, {"project": {"name": "x"}})
        assert created.status_code == 201
        project_id = created.json()["project"]["id"]
        deleted = clients["alice"].delete(f"{MONITOR}/{project_id}")
        assert deleted.status_code == 204
        assert monitor.violations() == []

    def test_last_project_delete_blocked(self, setup):
        # Only myProject exists: the model has no DELETE from SINGLE, so
        # the monitor blocks before Keystone could even comply.
        cloud, monitor, clients = setup
        response = clients["alice"].delete(f"{MONITOR}/myProject")
        assert response.status_code == 412

    def test_coverage(self, setup):
        cloud, monitor, clients = setup
        clients["carol"].get(MONITOR)
        clients["alice"].post(MONITOR, {"project": {"name": "x"}})
        assert set(monitor.coverage.covered_ids()) == {"3.1", "3.2"}

    def test_escalation_mutant_killed(self):
        cloud = PrivateCloud.paper_setup()
        tokens = cloud.paper_tokens()
        monitor = monitor_for_keystone(cloud.network, "myProject",
                                       enforcing=False)
        cloud.network.register("imonitor", monitor.app)
        cloud.keystone.policy.set_rule("identity:create_project",
                                       "role:admin or role:member")
        bob = cloud.client(tokens["bob"])
        response = bob.post(MONITOR, {"project": {"name": "sneaky"}})
        assert response.status_code == 502
        assert monitor.log[-1].verdict == Verdict.PRE_VIOLATION
        assert monitor.log[-1].security_requirements == ["3.2"]

    def test_contract_shapes(self):
        generator = ContractGenerator(keystone_behavior_model(),
                                      keystone_resource_model())
        delete = generator.for_trigger("DELETE(project)")
        assert len(delete.cases) == 2
        post = generator.for_trigger("POST(projects)")
        assert len(post.cases) == 2
