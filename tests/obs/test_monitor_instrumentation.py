"""The instrumented Figure-2 pipeline: spans, metrics, and the route.

All timings run under a ManualClock with a fixed tick, so every duration
in these tests is an exact equality, not a tolerance check.
"""

import json

from repro.cloud import PrivateCloud
from repro.core import CloudMonitor
from repro.core.monitor import CloudStateProvider
from repro.obs import ManualClock, Observability
from repro.validation import TestOracle, default_setup

MONITOR = "http://cmonitor/cmonitor/volumes"

STAGES = ("pre_probe", "pre_eval", "snapshot", "forward",
          "post_probe", "post_eval")


def deterministic_setup(enforcing=False, tick=1e-4):
    obs = Observability(clock=ManualClock(tick=tick))
    cloud, monitor = default_setup(enforcing=enforcing, observability=obs)
    tokens = cloud.paper_tokens()
    clients = {user: cloud.client(token) for user, token in tokens.items()}
    return cloud, monitor, clients


class TestSpans:
    def test_valid_request_covers_all_stages(self):
        cloud, monitor, clients = deterministic_setup()
        clients["bob"].post(MONITOR, {"volume": {"name": "v"}})
        trace = monitor.obs.tracer.finished[-1]
        assert [span.name for span in trace.spans] == list(STAGES)
        assert all(span.status == "ok" for span in trace.spans)
        assert trace.tags["verdict"] == "valid"

    def test_blocked_request_stops_after_pre_eval(self):
        cloud, monitor, clients = deterministic_setup(enforcing=True)
        response = clients["carol"].post(MONITOR, {"volume": {}})
        assert response.status_code == 412
        trace = monitor.obs.tracer.finished[-1]
        assert [span.name for span in trace.spans] == ["pre_probe",
                                                       "pre_eval"]
        assert trace.tags["verdict"] == "pre-blocked"

    def test_span_durations_deterministic_under_manual_clock(self):
        # A power-of-two tick keeps the clock arithmetic exact, so the
        # two requests produce bit-identical durations.
        cloud, monitor, clients = deterministic_setup(tick=0.25)
        clients["carol"].get(MONITOR)
        first = monitor.obs.tracer.finished[-1]
        durations = [span.duration for span in first.spans]
        clients["carol"].get(MONITOR)
        second = monitor.obs.tracer.finished[-1]
        assert [span.duration for span in second.spans] == durations
        assert all(duration > 0 for duration in durations)

    def test_forward_span_tags_cloud_status(self):
        cloud, monitor, clients = deterministic_setup()
        clients["bob"].post(MONITOR, {"volume": {"name": "v"}})
        trace = monitor.obs.tracer.finished[-1]
        assert trace.span_named("forward").tags["status"] == 202

    def test_correlation_id_joins_log_and_traces(self):
        cloud, monitor, clients = deterministic_setup()
        clients["carol"].get(MONITOR)
        clients["bob"].post(MONITOR, {"volume": {"name": "v"}})
        for verdict in monitor.log:
            trace = monitor.obs.tracer.find(verdict.correlation_id)
            assert trace is not None
            assert trace.tags["verdict"] == verdict.verdict


class TestMetrics:
    def test_verdict_counters_match_log(self):
        cloud, monitor, clients = deterministic_setup()
        TestOracle(cloud, monitor).run()
        metrics = monitor.obs.metrics
        assert metrics.counter_value("monitor_requests_total") == \
            len(monitor.log)
        for verdict in {v.verdict for v in monitor.log}:
            expected = sum(1 for v in monitor.log if v.verdict == verdict)
            assert metrics.counter_value("monitor_verdicts_total",
                                         verdict=verdict) == expected

    def test_stage_histograms_for_every_stage(self):
        cloud, monitor, clients = deterministic_setup()
        clients["bob"].post(MONITOR, {"volume": {"name": "v"}})
        metrics = monitor.obs.metrics
        for stage in STAGES:
            histogram = metrics.get("monitor_stage_seconds", stage=stage)
            assert histogram is not None and histogram.count == 1

    def test_probe_counter_matches_provider(self):
        cloud, monitor, clients = deterministic_setup()
        clients["carol"].get(MONITOR)
        assert monitor.obs.metrics.counter_value(
            "monitor_probe_requests_total") == monitor.provider.probe_count

    def test_identity_cache_hit_miss_counters(self):
        cloud = PrivateCloud.paper_setup()
        obs = Observability(clock=ManualClock())
        provider = CloudStateProvider(cloud.network, "myProject",
                                      cache_identity=True,
                                      observability=obs)
        token = cloud.paper_tokens()["bob"]
        provider.bindings(token)
        provider.bindings(token)
        provider.bindings(token)
        assert obs.metrics.counter_value(
            "monitor_identity_cache_misses_total") == 1
        assert obs.metrics.counter_value(
            "monitor_identity_cache_hits_total") == 2

    def test_ocl_eval_metrics_recorded(self):
        cloud, monitor, clients = deterministic_setup()
        clients["bob"].post(MONITOR, {"volume": {"name": "v"}})
        metrics = monitor.obs.metrics
        for phase in ("pre", "snapshot", "post"):
            histogram = metrics.get("ocl_eval_seconds", phase=phase)
            assert histogram is not None and histogram.count >= 1
        assert metrics.counter_value("ocl_nodes_evaluated_total",
                                     phase="pre") > 0

    def test_snapshot_bytes_counter_matches_log(self):
        cloud, monitor, clients = deterministic_setup()
        TestOracle(cloud, monitor).run()
        expected = sum(v.snapshot_bytes for v in monitor.log)
        assert monitor.obs.metrics.counter_value(
            "monitor_snapshot_bytes_total") == expected

    def test_network_counters_by_host(self):
        cloud, monitor, clients = deterministic_setup()
        clients["carol"].get(MONITOR)
        metrics = monitor.obs.metrics
        assert metrics.counter_value("network_requests_total",
                                     host="cmonitor") == 1
        assert metrics.counter_value("network_requests_total",
                                     host="cinder") >= 1


class TestMetricsRoute:
    def test_prometheus_exposition(self):
        cloud, monitor, clients = deterministic_setup()
        clients["bob"].post(MONITOR, {"volume": {"name": "v"}})
        response = monitor.app.get("/-/metrics")
        assert response.status_code == 200
        assert "text/plain" in response.headers.get("Content-Type")
        body = response.text
        assert "monitor_requests_total 1" in body
        assert 'monitor_stage_seconds_bucket{stage="forward"' in body
        assert 'monitor_verdicts_total{verdict="valid"} 1' in body

    def test_json_format(self):
        cloud, monitor, clients = deterministic_setup()
        clients["bob"].post(MONITOR, {"volume": {"name": "v"}})
        document = monitor.app.get("/-/metrics?format=json").json()
        names = {family["name"] for family in document["metrics"]}
        assert "monitor_stage_seconds" in names
        assert document["traces"][-1]["tags"]["verdict"] == "valid"
        json.dumps(document)

    def test_route_rejects_write_methods(self):
        cloud, monitor, clients = deterministic_setup()
        assert monitor.app.post("/-/metrics", {}).status_code == 405

    def test_deterministic_exposition_across_sessions(self):
        def run():
            cloud, monitor, clients = deterministic_setup()
            TestOracle(cloud, monitor).run()
            return monitor.app.get("/-/metrics").text

        assert run() == run()


class TestWideEvents:
    def test_one_wide_event_per_monitored_request(self):
        cloud, monitor, clients = deterministic_setup()
        TestOracle(cloud, monitor).run()
        events = monitor.obs.events.filter(event="monitor_request")
        assert len(events) == len(monitor.log)
        for verdict, event in zip(monitor.log, events):
            assert event.trace_id == verdict.correlation_id
            assert event.get("verdict") == verdict.verdict
            assert event.get("operation") == str(verdict.trigger)

    def test_wide_event_carries_the_full_request_story(self):
        cloud, monitor, clients = deterministic_setup()
        clients["bob"].post(MONITOR, {"volume": {"name": "v"}})
        (event,) = monitor.obs.events.filter(event="monitor_request")
        assert event.get("forwarded") is True
        assert event.get("response_status") == 202
        assert event.get("probes") > 0
        assert event.get("retries") == 0
        assert set(event.get("stage_seconds")) == set(STAGES)
        assert all(value > 0
                   for value in event.get("stage_seconds").values())
        assert event.get("duration") > 0
        assert event.get("security_requirements")

    def test_event_stage_seconds_match_the_trace(self):
        cloud, monitor, clients = deterministic_setup(tick=0.25)
        clients["carol"].get(MONITOR)
        (event,) = monitor.obs.events.filter(event="monitor_request")
        trace = monitor.obs.tracer.find(event.trace_id)
        for span in trace.spans:
            assert event.get("stage_seconds")[span.name] == span.duration

    def test_correlate_events_joins_audit_log(self):
        from repro.core.auditlog import correlate_events

        cloud, monitor, clients = deterministic_setup()
        clients["carol"].get(MONITOR)
        clients["bob"].post(MONITOR, {"volume": {"name": "v"}})
        pairs = correlate_events(monitor.log, monitor.obs.events)
        assert len(pairs) == 2
        for verdict, event in pairs:
            assert event is not None
            assert event.get("verdict") == verdict.verdict


class TestDiagnosticRoutes:
    def test_health_route_reports_ok(self):
        cloud, monitor, clients = deterministic_setup()
        clients["carol"].get(MONITOR)
        response = monitor.app.get("/-/health")
        assert response.status_code == 200
        document = response.json()
        assert document["overall"] == "ok"
        assert {entry["name"] for entry in document["slos"]} \
            == {"verdict-availability", "stage-latency",
                "indeterminate-rate", "shed-rate"}

    def test_events_route_filters(self):
        cloud, monitor, clients = deterministic_setup()
        clients["carol"].get(MONITOR)
        clients["bob"].post(MONITOR, {"volume": {"name": "v"}})
        document = monitor.app.get(
            "/-/events?event=monitor_request&verdict=valid").json()
        assert all(event["verdict"] == "valid"
                   for event in document["events"])
        limited = monitor.app.get("/-/events?limit=1").json()
        assert len(limited["events"]) == 1
        assert monitor.app.get("/-/events?limit=bogus").status_code == 400

    def test_trace_route_resolves_retained_traces(self):
        cloud, monitor, clients = deterministic_setup()
        clients["carol"].get(MONITOR)
        trace_id = monitor.log[-1].correlation_id
        document = monitor.app.get(f"/-/traces/{trace_id}").json()
        assert document["trace_id"] == trace_id
        assert document["critical_path"]["dominant"] in STAGES
        assert monitor.app.get("/-/traces/t-999999").status_code == 404

    def test_trace_index_reports_attribution_and_exemplars(self):
        cloud, monitor, clients = deterministic_setup()
        TestOracle(cloud, monitor).run()
        document = monitor.app.get("/-/traces").json()
        assert document["retained"] == len(monitor.log)
        assert document["attribution"]
        assert document["exemplars"]


class TestExemplarsEndToEnd:
    def test_stage_histograms_export_resolvable_exemplars(self):
        cloud, monitor, clients = deterministic_setup()
        TestOracle(cloud, monitor).run()
        exposition = monitor.app.get("/-/metrics").text
        assert 'monitor_stage_seconds_bucket' in exposition
        assert '# {trace_id="t-' in exposition
        # Every exemplar the analytics join reports as resolved points
        # at a trace the ring still retains.
        from repro.obs import resolve_exemplars

        entries = resolve_exemplars(monitor.obs.metrics,
                                    monitor.obs.tracer)
        stage_entries = [entry for entry in entries
                         if entry["family"] == "monitor_stage_seconds"]
        assert stage_entries
        assert all(entry["resolved"] for entry in stage_entries)
        for entry in stage_entries:
            trace_id = entry["exemplar"]["labels"]["trace_id"]
            assert monitor.obs.tracer.find(trace_id) is not None

    def test_duration_histogram_exemplar_names_latest_request(self):
        cloud, monitor, clients = deterministic_setup()
        clients["carol"].get(MONITOR)
        (series,) = monitor.obs.metrics.series("monitor_request_seconds")
        _, histogram = series
        (exemplar,) = histogram.exemplars.values()
        assert exemplar.labels["trace_id"] == \
            monitor.log[-1].correlation_id
