"""Tests for the SLO selectors, burn-rate math, and health reports."""

import json

import pytest

from repro.errors import SLOError
from repro.obs import (
    BucketCount,
    BurnWindow,
    CounterTotal,
    Linear,
    ManualClock,
    MetricsRegistry,
    ObservationCount,
    SLO,
    SLOEngine,
    default_slos,
)
from repro.obs.metrics import DEFAULT_BUCKETS
from repro.obs.slo import STAGE_LATENCY_THRESHOLD


def seeded_registry():
    registry = MetricsRegistry()
    registry.counter("requests_total", host="cinder").inc(4)
    registry.counter("requests_total", host="keystone").inc(6)
    histogram = registry.histogram("stage_seconds", buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    return registry


class TestSelectors:
    def test_counter_total_sums_across_series(self):
        assert CounterTotal("requests_total").value(seeded_registry()) == 10

    def test_counter_total_label_filter(self):
        selector = CounterTotal("requests_total",
                                labels={"host": "cinder"})
        assert selector.value(seeded_registry()) == 4
        assert 'host="cinder"' in selector.describe()

    def test_counter_total_of_unknown_family_is_zero(self):
        assert CounterTotal("nope").value(seeded_registry()) == 0

    def test_observation_count(self):
        assert ObservationCount("stage_seconds").value(
            seeded_registry()) == 3

    def test_bucket_count_at_each_bound(self):
        registry = seeded_registry()
        assert BucketCount("stage_seconds", le=0.1).value(registry) == 1
        assert BucketCount("stage_seconds", le=1.0).value(registry) == 2

    def test_bucket_count_rejects_non_bucket_threshold(self):
        with pytest.raises(SLOError):
            BucketCount("stage_seconds", le=0.5).value(seeded_registry())

    def test_linear_combination_and_describe(self):
        selector = Linear([(1, CounterTotal("requests_total")),
                           (-1, CounterTotal("requests_total",
                                             labels={"host": "cinder"}))])
        assert selector.value(seeded_registry()) == 6
        assert selector.describe().startswith("requests_total-")

    def test_linear_needs_terms(self):
        with pytest.raises(SLOError):
            Linear([])


class TestSLO:
    def test_objective_must_be_a_fraction(self):
        good = CounterTotal("g")
        for objective in (0.0, 1.0, 1.5, -0.1):
            with pytest.raises(SLOError):
                SLO("x", "", objective, good, good)

    def test_budget_is_complement_of_objective(self):
        slo = SLO("x", "", 0.99, CounterTotal("g"), CounterTotal("t"))
        assert slo.budget == pytest.approx(0.01)

    def test_measure_clamps_good_into_total(self):
        registry = MetricsRegistry()
        registry.counter("g").inc(12)
        registry.counter("t").inc(10)
        slo = SLO("x", "", 0.9, CounterTotal("g"), CounterTotal("t"))
        assert slo.measure(registry) == (10.0, 10.0)

    def test_burn_window_needs_positive_span(self):
        with pytest.raises(SLOError):
            BurnWindow("w", 0.0, 1.0)


class TestDefaultSLOs:
    def test_catalog_names_and_objectives(self):
        by_name = {slo.name: slo for slo in default_slos()}
        assert set(by_name) == {"verdict-availability", "stage-latency",
                                "indeterminate-rate", "shed-rate"}
        assert by_name["verdict-availability"].objective == 0.999

    def test_latency_threshold_is_a_default_bucket_bound(self):
        # BucketCount can only answer at exact bounds; the default SLO
        # must therefore point at a real DEFAULT_BUCKETS edge.
        assert STAGE_LATENCY_THRESHOLD in DEFAULT_BUCKETS

    def test_duplicate_slo_names_rejected(self):
        slo = default_slos()[0]
        with pytest.raises(SLOError):
            SLOEngine(MetricsRegistry(), clock=ManualClock(),
                      slos=[slo, slo])


def burning_setup():
    """An engine where a good spell is followed by a total outage."""
    clock = ManualClock()
    registry = MetricsRegistry()
    good = registry.counter("good_events")
    total = registry.counter("all_events")
    engine = SLOEngine(
        registry, clock=clock,
        slos=[SLO("avail", "availability", 0.9,
                  CounterTotal("good_events"),
                  CounterTotal("all_events"))],
        windows=(BurnWindow("fast", 10.0, 2.0),
                 BurnWindow("slow", 100.0, 6.0)))
    # t=5: ten perfect events, snapshotted.
    clock.advance(5.0)
    good.inc(10)
    total.inc(10)
    engine.snapshot()
    # t=50: ten more events, all bad.
    clock.advance(45.0)
    total.inc(10)
    return clock, good, total, engine


class TestEngine:
    def test_healthy_when_nothing_happened(self):
        engine = SLOEngine(MetricsRegistry(), clock=ManualClock(),
                           slos=default_slos())
        report = engine.report()
        assert report["overall"] == "ok"
        assert engine.healthy()
        for entry in report["slos"]:
            assert entry["compliance"] == 1.0

    def test_fast_window_burn_uses_windowed_baseline(self):
        _, _, _, engine = burning_setup()
        entry = engine.report()["slos"][0]
        fast, slow = entry["windows"]
        # Fast window (10s at t=50): baseline is the t=5 snapshot, so the
        # window saw 10 events, all bad: burn = 1.0 / 0.1 budget = 10.
        assert fast["burn_rate"] == pytest.approx(10.0)
        assert fast["breaching"]
        # Slow window reaches past engine creation: implicit zero
        # baseline, 10 bad of 20 events: burn = 0.5 / 0.1 = 5 < 6.
        assert slow["burn_rate"] == pytest.approx(5.0)
        assert not slow["breaching"]

    def test_paging_requires_every_window_to_breach(self):
        _, _, _, engine = burning_setup()
        report = engine.report()
        # Only the fast window breached -- a blip, not a page.
        assert report["slos"][0]["status"] == "ok"
        assert report["overall"] == "ok"

    def test_sustained_burn_pages_and_unhealths(self):
        clock, _, total, engine = burning_setup()
        clock.advance(70.0)          # t=120: slow window now starts at t=20
        total.inc(20)                # another 20 bad events
        report = engine.report()
        assert report["slos"][0]["status"] == "burning"
        assert report["overall"] == "burning"
        assert not engine.healthy()

    def test_burn_is_zero_without_traffic_in_window(self):
        clock = ManualClock()
        registry = MetricsRegistry()
        engine = SLOEngine(registry, clock=clock, slos=default_slos())
        clock.advance(1000.0)
        for entry in engine.report()["slos"]:
            assert all(window["burn_rate"] == 0.0
                       for window in entry["windows"])

    def test_snapshot_ring_is_bounded(self):
        clock = ManualClock(tick=1.0)
        engine = SLOEngine(MetricsRegistry(), clock=clock,
                           slos=default_slos(), keep=3)
        for _ in range(10):
            engine.snapshot()
        assert len(engine) == 3

    def test_report_is_byte_stable_for_identical_histories(self):
        def run():
            _, _, _, engine = burning_setup()
            return json.dumps(engine.report(), sort_keys=True)
        assert run() == run()

    def test_render_mentions_every_slo_and_overall(self):
        _, _, _, engine = burning_setup()
        text = engine.render()
        assert "overall: ok" in text
        assert "avail" in text
        assert "fast-burn" in text
