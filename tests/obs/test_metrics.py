"""Unit tests for counters, gauges, histograms, and the registry."""

import pytest

from repro.errors import MetricsError
from repro.obs import (Counter, Exemplar, GAUGE_MERGE_MODES, Gauge,
                       Histogram, ManualClock, MetricsRegistry,
                       merge_registries)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter()
        with pytest.raises(MetricsError):
            counter.inc(-1)
        assert counter.value == 0

    def test_zero_increment_allowed(self):
        counter = Counter()
        counter.inc(0)
        assert counter.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_may_go_negative(self):
        gauge = Gauge()
        gauge.dec(4)
        assert gauge.value == -4


class TestHistogram:
    def test_observe_updates_count_sum_extremes(self):
        histogram = Histogram(bounds=(1, 2, 4))
        for value in (0.5, 1.5, 3.0, 9.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == 14.0
        assert histogram.min == 0.5
        assert histogram.max == 9.0
        assert histogram.bucket_counts == [1, 1, 1, 1]

    def test_boundary_value_falls_in_lower_bucket(self):
        histogram = Histogram(bounds=(1, 2))
        histogram.observe(1.0)
        assert histogram.bucket_counts == [1, 0, 0]

    def test_mean(self):
        histogram = Histogram(bounds=(10,))
        histogram.observe(2)
        histogram.observe(4)
        assert histogram.mean == 3.0
        assert Histogram(bounds=(10,)).mean == 0.0

    def test_percentile_empty_is_zero(self):
        assert Histogram(bounds=(1,)).percentile(0.5) == 0.0

    def test_percentile_bad_quantile_rejected(self):
        with pytest.raises(MetricsError):
            Histogram(bounds=(1,)).percentile(1.5)

    def test_percentile_single_value_is_exact(self):
        histogram = Histogram(bounds=(1, 2, 4))
        histogram.observe(1.7)
        for quantile in (0.0, 0.5, 0.99, 1.0):
            assert histogram.percentile(quantile) == 1.7

    def test_percentile_overflow_bucket_uses_max(self):
        histogram = Histogram(bounds=(1,))
        histogram.observe(50)
        histogram.observe(0.5)
        assert histogram.percentile(1.0) == 50

    def test_percentile_estimates_bounded_by_bucket(self):
        histogram = Histogram(bounds=(1, 2, 4, 8))
        for value in (0.5, 1.5, 1.6, 3.0, 3.5, 7.0):
            histogram.observe(value)
        # p50 rank 3 lands in the (1, 2] bucket.
        assert histogram.percentile(0.5) == 2.0

    def test_summary_keys(self):
        histogram = Histogram(bounds=(1,))
        histogram.observe(0.5)
        summary = histogram.summary()
        assert set(summary) == {"count", "sum", "mean", "min", "max",
                                "p50", "p90", "p95", "p99"}

    def test_invalid_bounds_rejected(self):
        with pytest.raises(MetricsError):
            Histogram(bounds=())
        with pytest.raises(MetricsError):
            Histogram(bounds=(1, 1))
        with pytest.raises(MetricsError):
            Histogram(bounds=(2, 1))

    def test_merge_requires_same_bounds(self):
        with pytest.raises(MetricsError):
            Histogram(bounds=(1,)).merge(Histogram(bounds=(2,)))

    def test_merge_combines_everything(self):
        left, right = Histogram(bounds=(1, 2)), Histogram(bounds=(1, 2))
        left.observe(0.5)
        right.observe(5.0)
        merged = left.merge(right)
        assert merged.count == 2
        assert merged.min == 0.5
        assert merged.max == 5.0
        assert merged.bucket_counts == [1, 0, 1]
        # Operands are untouched.
        assert left.count == 1 and right.count == 1

    def test_merge_with_empty_is_identity(self):
        histogram = Histogram(bounds=(1, 2))
        histogram.observe(1.5)
        merged = histogram.merge(Histogram(bounds=(1, 2)))
        assert merged.state() == histogram.state()


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total", host="a")
        second = registry.counter("requests_total", host="a")
        assert first is second

    def test_label_values_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", host="a").inc()
        registry.counter("requests_total", host="b").inc(2)
        assert registry.counter_value("requests_total", host="a") == 1
        assert registry.counter_value("requests_total", host="b") == 2
        assert registry.total("requests_total") == 3

    def test_type_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(MetricsError):
            registry.gauge("thing")

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.counter("bad name")
        with pytest.raises(MetricsError):
            registry.counter("")

    def test_histogram_bucket_clash_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1, 2))
        with pytest.raises(MetricsError):
            registry.histogram("lat", buckets=(1, 2, 3))

    def test_missing_series_reads_as_zero(self):
        registry = MetricsRegistry()
        assert registry.counter_value("never_touched") == 0.0
        assert registry.get("never_touched") is None
        assert registry.series("never_touched") == []

    def test_timer_uses_injected_clock(self):
        clock = ManualClock(tick=0.5)
        registry = MetricsRegistry(clock=clock)
        with registry.time("op_seconds") as timer:
            pass
        assert timer.elapsed == 0.5
        histogram = registry.get("op_seconds")
        assert histogram.count == 1
        assert histogram.sum == 0.5

    def test_len_counts_series(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.counter("b", x="1")
        registry.counter("b", x="2")
        assert len(registry) == 3


class TestExemplars:
    def test_observe_attaches_exemplar_to_the_landing_bucket(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(0.5, exemplar={"trace_id": "t-1"}, timestamp=3.0)
        histogram.observe(9.0, exemplar={"trace_id": "t-2"})
        assert histogram.exemplars[0].labels == {"trace_id": "t-1"}
        assert histogram.exemplars[0].value == 0.5
        assert histogram.exemplars[0].timestamp == 3.0
        assert histogram.exemplars[2].labels == {"trace_id": "t-2"}
        assert 1 not in histogram.exemplars

    def test_most_recent_exemplar_per_bucket_wins(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(0.5, exemplar={"trace_id": "old"})
        histogram.observe(0.7, exemplar={"trace_id": "new"})
        assert histogram.exemplars[0].labels == {"trace_id": "new"}

    def test_observation_without_exemplar_keeps_the_old_one(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(0.5, exemplar={"trace_id": "t-1"})
        histogram.observe(0.7)
        assert histogram.exemplars[0].labels == {"trace_id": "t-1"}

    def test_exemplar_labels_and_values_coerced_to_strings(self):
        exemplar = Exemplar({"attempt": 3}, value=1, timestamp=2)
        assert exemplar.labels == {"attempt": "3"}
        assert exemplar.to_dict() == {"labels": {"attempt": "3"},
                                      "value": 1.0, "timestamp": 2.0}

    def test_untimestamped_to_dict_omits_timestamp(self):
        assert "timestamp" not in Exemplar({"t": "x"}, 1.0).to_dict()

    def test_merge_prefers_timestamped_then_newest(self):
        left = Histogram(bounds=(1.0,))
        right = Histogram(bounds=(1.0,))
        left.observe(0.5, exemplar={"trace_id": "untimed"})
        right.observe(0.6, exemplar={"trace_id": "timed"}, timestamp=1.0)
        merged = left.merge(right)
        assert merged.exemplars[0].labels == {"trace_id": "timed"}
        newer = Histogram(bounds=(1.0,))
        newer.observe(0.7, exemplar={"trace_id": "newer"}, timestamp=5.0)
        assert right.merge(newer).exemplars[0].labels \
            == {"trace_id": "newer"}

    def test_merge_carries_one_sided_exemplars(self):
        left = Histogram(bounds=(1.0,))
        left.observe(0.5, exemplar={"trace_id": "only"})
        merged = left.merge(Histogram(bounds=(1.0,)))
        assert merged.exemplars[0].labels == {"trace_id": "only"}


class TestGaugeMergeModes:
    """Per-gauge merge policy for the fleet's merged registry view."""

    def value(self, registry, name):
        return registry.families[name].series[()].value

    def registries(self, name, values):
        out = []
        for value in values:
            registry = MetricsRegistry()
            registry.gauge(name, "g").set(value)
            out.append(registry)
        return out

    def test_default_mode_sums_across_shards(self):
        merged = merge_registries(self.registries("monitor_inflight",
                                                  [2.0, 3.0, 5.0]))
        assert self.value(merged, "monitor_inflight") == 10.0

    def test_state_enum_gauges_default_to_max(self):
        # GAUGE_MERGE_MODES pins the worst-shard policy for the two
        # encoded-state gauges; a sum of enum codes means nothing.
        assert GAUGE_MERGE_MODES == {"monitor_degraded_mode": "max",
                                     "monitor_breaker_state": "max"}
        for name in GAUGE_MERGE_MODES:
            merged = merge_registries(self.registries(name,
                                                      [2.0, 0.0, 1.0]))
            assert self.value(merged, name) == 2.0, name

    def test_max_mode_with_all_zero_shards_is_zero(self):
        # 0.0 is a legitimate gauge value, not "unset": the first-visit
        # bookkeeping must not leave the merged series missing.
        merged = merge_registries(
            self.registries("monitor_degraded_mode", [0.0, 0.0]))
        assert self.value(merged, "monitor_degraded_mode") == 0.0

    def test_max_mode_with_negative_values(self):
        merged = merge_registries(
            self.registries("monitor_degraded_mode", [-3.0, -1.0, -2.0]))
        assert self.value(merged, "monitor_degraded_mode") == -1.0

    def test_last_mode_keeps_the_final_registry(self):
        merged = merge_registries(
            self.registries("monitor_config_epoch", [7.0, 3.0]),
            gauge_modes={"monitor_config_epoch": "last"})
        assert self.value(merged, "monitor_config_epoch") == 3.0

    def test_override_replaces_the_default_mode(self):
        merged = merge_registries(
            self.registries("monitor_degraded_mode", [2.0, 1.0]),
            gauge_modes={"monitor_degraded_mode": "sum"})
        assert self.value(merged, "monitor_degraded_mode") == 3.0

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(MetricsError):
            merge_registries([MetricsRegistry()],
                             gauge_modes={"anything": "median"})

    def test_modes_apply_per_label_series(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.gauge("monitor_breaker_state", "g", host="nova").set(2.0)
        left.gauge("monitor_breaker_state", "g", host="cinder").set(0.0)
        right.gauge("monitor_breaker_state", "g", host="nova").set(1.0)
        right.gauge("monitor_breaker_state", "g", host="cinder").set(1.0)
        merged = merge_registries([left, right])
        by_host = {dict(labels)["host"]: gauge.value for labels, gauge
                   in merged.series("monitor_breaker_state")}
        assert by_host == {"nova": 2.0, "cinder": 1.0}
