"""Property-based tests for metric invariants.

Three invariants the exporters and any sharded aggregation rely on:

* histogram percentile estimates are monotone in the quantile,
* histogram merge is associative (and commutative), so shard results can
  be combined in any order,
* counters never go negative, whatever sequence of valid increments runs.

Observations are drawn from small integers scaled by a power of two, so
float arithmetic on sums is exact and associativity can be asserted with
``==`` rather than approximations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import MetricsError
from repro.obs import Counter, Histogram

BOUNDS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)

# Exactly representable values: k / 4 for k in 0..256.
_values = st.integers(min_value=0, max_value=256).map(lambda k: k / 4.0)
_value_lists = st.lists(_values, max_size=40)


def _filled(values):
    histogram = Histogram(bounds=BOUNDS)
    for value in values:
        histogram.observe(value)
    return histogram


class TestPercentileMonotonicity:
    @given(_value_lists.filter(bool),
           st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=200, deadline=None)
    def test_percentile_monotone_in_quantile(self, values, q1, q2):
        histogram = _filled(values)
        low, high = sorted((q1, q2))
        assert histogram.percentile(low) <= histogram.percentile(high)

    @given(_value_lists.filter(bool))
    @settings(max_examples=100, deadline=None)
    def test_percentile_within_observed_range(self, values):
        histogram = _filled(values)
        for quantile in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            estimate = histogram.percentile(quantile)
            assert min(values) <= estimate <= max(values)

    @given(_value_lists.filter(bool))
    @settings(max_examples=100, deadline=None)
    def test_extreme_quantiles(self, values):
        histogram = _filled(values)
        assert histogram.percentile(1.0) == max(values)
        assert histogram.percentile(0.0) >= min(values)


class TestMergeAlgebra:
    @given(_value_lists, _value_lists, _value_lists)
    @settings(max_examples=150, deadline=None)
    def test_merge_associative(self, a, b, c):
        ha, hb, hc = _filled(a), _filled(b), _filled(c)
        left = ha.merge(hb).merge(hc)
        right = ha.merge(hb.merge(hc))
        assert left.state() == right.state()

    @given(_value_lists, _value_lists)
    @settings(max_examples=150, deadline=None)
    def test_merge_commutative(self, a, b):
        assert _filled(a).merge(_filled(b)).state() == \
            _filled(b).merge(_filled(a)).state()

    @given(_value_lists)
    @settings(max_examples=100, deadline=None)
    def test_empty_is_identity(self, values):
        histogram = _filled(values)
        empty = Histogram(bounds=BOUNDS)
        assert histogram.merge(empty).state() == histogram.state()
        assert empty.merge(histogram).state() == histogram.state()

    @given(_value_lists, _value_lists)
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_combined_observation(self, a, b):
        merged = _filled(a).merge(_filled(b))
        combined = _filled(list(a) + list(b))
        assert merged.state() == combined.state()


class TestCounterNonNegativity:
    @given(st.lists(st.one_of(
        st.integers(min_value=0, max_value=1000).map(lambda k: k / 4.0),
        st.integers(min_value=-1000, max_value=-1).map(lambda k: k / 4.0),
    ), max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_counter_never_negative(self, amounts):
        counter = Counter()
        for amount in amounts:
            if amount < 0:
                with pytest.raises(MetricsError):
                    counter.inc(amount)
            else:
                counter.inc(amount)
            assert counter.value >= 0

    @given(st.lists(st.integers(min_value=0, max_value=1000)
                    .map(lambda k: k / 4.0), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_counter_value_is_sum_of_increments(self, amounts):
        counter = Counter()
        for amount in amounts:
            counter.inc(amount)
        assert counter.value == sum(amounts)
