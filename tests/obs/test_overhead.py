"""Tests for the obs-layer self-accounting recorder."""

import threading

import pytest

from repro.obs import (
    OVERHEAD_HISTOGRAM,
    ManualClock,
    MetricsRegistry,
    OverheadRecorder,
    STAGES,
)
from repro.obs.overhead import OVERHEAD_BUCKETS


def recorder(tick=1.0):
    clock = ManualClock(tick=tick)
    registry = MetricsRegistry(clock=clock)
    return OverheadRecorder(registry, clock), registry


class TestStageTiming:
    def test_stage_cost_is_the_clock_reads_inside_it(self):
        # Under a ticking manual clock a stage's "duration" is a pure
        # operation count: enter + exit read the clock once each, so an
        # empty body costs exactly one tick.
        instance, registry = recorder(tick=1.0)
        with instance.stage("metrics"):
            pass
        (labels, histogram), = registry.series(OVERHEAD_HISTOGRAM)
        assert dict(labels)["stage"] == "metrics"
        assert histogram.count == 1
        assert histogram.sum == pytest.approx(1.0)
        assert histogram.bounds == OVERHEAD_BUCKETS

    def test_body_clock_reads_are_attributed_to_the_stage(self):
        instance, _registry = recorder(tick=1.0)
        with instance.stage("tracing"):
            instance.clock()
            instance.clock()
        assert instance.totals["tracing"] == pytest.approx(3.0)

    def test_stage_records_even_when_the_body_raises(self):
        instance, registry = recorder(tick=1.0)
        with pytest.raises(RuntimeError):
            with instance.stage("events"):
                raise RuntimeError("boom")
        (labels, histogram), = registry.series(OVERHEAD_HISTOGRAM)
        assert dict(labels)["stage"] == "events"
        assert histogram.count == 1

    def test_every_finish_stage_name_is_known(self):
        assert STAGES == ("metrics", "tracing", "events")


class TestAttribution:
    def test_none_before_begin_request(self):
        instance, _registry = recorder()
        assert instance.attribution() is None
        with instance.stage("metrics"):
            pass
        # Without begin_request the histogram still records, but there
        # is no per-request bucket to attribute into.
        assert instance.attribution() is None
        assert instance.total() == pytest.approx(1.0)

    def test_begin_request_resets_the_attribution(self):
        instance, _registry = recorder(tick=1.0)
        instance.begin_request()
        with instance.stage("metrics"):
            pass
        assert instance.attribution() == {"metrics": pytest.approx(1.0)}
        instance.begin_request()
        assert instance.attribution() == {}

    def test_stages_accumulate_within_one_request(self):
        instance, _registry = recorder(tick=1.0)
        instance.begin_request()
        with instance.stage("metrics"):
            pass
        with instance.stage("metrics"):
            pass
        with instance.stage("tracing"):
            pass
        attribution = instance.attribution()
        assert attribution["metrics"] == pytest.approx(2.0)
        assert attribution["tracing"] == pytest.approx(1.0)
        assert instance.total() == pytest.approx(3.0)

    def test_attribution_is_thread_local(self):
        instance, _registry = recorder(tick=1.0)
        instance.begin_request()
        with instance.stage("metrics"):
            pass
        seen = {}

        def other_thread():
            seen["attribution"] = instance.attribution()
            instance.begin_request()
            with instance.stage("events"):
                pass
            seen["after"] = instance.attribution()

        thread = threading.Thread(target=other_thread)
        thread.start()
        thread.join()
        # The other thread saw no attribution until it began its own
        # request, and its stages never leaked into this thread's view.
        assert seen["attribution"] is None
        assert set(seen["after"]) == {"events"}
        assert set(instance.attribution()) == {"metrics"}
        # The cross-request totals see both threads.
        assert instance.total() == pytest.approx(2.0)
