"""Tests for the Prometheus text and JSON exporters."""

import json

from repro.obs import (
    ManualClock,
    MetricsRegistry,
    Observability,
    render_json,
    render_prometheus,
)


def sample_registry():
    registry = MetricsRegistry()
    registry.counter("requests_total", "Requests", host="cinder").inc(3)
    registry.gauge("in_flight", "In flight").set(2)
    histogram = registry.histogram("latency_seconds", "Latency",
                                   buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    return registry


class TestPrometheus:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_help_and_type_headers(self):
        text = render_prometheus(sample_registry())
        assert "# HELP requests_total Requests" in text
        assert "# TYPE requests_total counter" in text
        assert "# TYPE in_flight gauge" in text
        assert "# TYPE latency_seconds histogram" in text

    def test_counter_line_with_labels(self):
        text = render_prometheus(sample_registry())
        assert 'requests_total{host="cinder"} 3' in text.splitlines()

    def test_histogram_buckets_are_cumulative(self):
        lines = render_prometheus(sample_registry()).splitlines()
        assert 'latency_seconds_bucket{le="0.1"} 1' in lines
        assert 'latency_seconds_bucket{le="1"} 2' in lines
        assert 'latency_seconds_bucket{le="+Inf"} 3' in lines
        assert 'latency_seconds_count 3' in lines
        assert any(line.startswith("latency_seconds_sum ")
                   for line in lines)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='say "hi"\n').inc()
        text = render_prometheus(registry)
        assert r'path="say \"hi\"\n"' in text

    def test_families_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        text = render_prometheus(registry)
        assert text.index("alpha") < text.index("zeta")


class TestJson:
    def test_document_is_json_serializable(self):
        document = render_json(sample_registry())
        json.dumps(document)

    def test_counter_and_gauge_values(self):
        document = render_json(sample_registry())
        by_name = {family["name"]: family
                   for family in document["metrics"]}
        (series,) = by_name["requests_total"]["series"]
        assert series["labels"] == {"host": "cinder"}
        assert series["value"] == 3
        assert by_name["in_flight"]["series"][0]["value"] == 2

    def test_histogram_summary_and_buckets(self):
        document = render_json(sample_registry())
        by_name = {family["name"]: family
                   for family in document["metrics"]}
        (series,) = by_name["latency_seconds"]["series"]
        assert series["summary"]["count"] == 3
        assert series["buckets"][-1]["le"] == "+Inf"

    def test_buckets_are_per_bucket_not_cumulative(self):
        # The JSON document reports each bucket alone; the Prometheus
        # exposition reports running totals.  Cross-check both views of
        # the same histogram: per-bucket counts must sum to the series
        # count, and their running sum must reproduce the text lines.
        registry = sample_registry()
        document = render_json(registry)
        by_name = {family["name"]: family
                   for family in document["metrics"]}
        buckets = by_name["latency_seconds"]["series"][0]["buckets"]
        assert [bucket["count"] for bucket in buckets] == [1, 1, 1]
        assert sum(bucket["count"] for bucket in buckets) == 3
        lines = render_prometheus(registry).splitlines()
        cumulative = 0
        for bucket in buckets[:-1]:
            cumulative += bucket["count"]
            assert (f'latency_seconds_bucket{{le="{bucket["le"]:g}"}} '
                    f"{cumulative}") in lines
        assert 'latency_seconds_bucket{le="+Inf"} 3' in lines

    def test_inf_bucket_is_overflow_only(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0,))
        histogram.observe(0.5)
        histogram.observe(2.0)
        histogram.observe(3.0)
        document = render_json(registry)
        buckets = document["metrics"][0]["series"][0]["buckets"]
        assert buckets == [{"le": 1.0, "count": 1},
                           {"le": "+Inf", "count": 2}]


class TestHelpEscaping:
    def test_newline_and_backslash_in_help_are_escaped(self):
        # A raw newline in HELP text would terminate the comment line
        # mid-string and desynchronize the whole scrape.
        registry = MetricsRegistry()
        registry.counter("c", help="path C:\\tmp\nsecond line").inc()
        lines = render_prometheus(registry).splitlines()
        assert r"# HELP c path C:\\tmp\nsecond line" in lines
        assert "second line" not in lines

    def test_double_quotes_in_help_stay_verbatim(self):
        registry = MetricsRegistry()
        registry.counter("c", help='the "monitor" counter').inc()
        assert '# HELP c the "monitor" counter' \
            in render_prometheus(registry).splitlines()


class TestLabelEscapingRoundTrip:
    AWKWARD = ['say "hi"', "back\\slash", "multi\nline", 'mix\\"\n"']

    def parse_label(self, line):
        """Undo exposition-format label escaping for one rendered line."""
        raw = line[line.index('="') + 2:line.rindex('"')]
        out, index = [], 0
        while index < len(raw):
            if raw[index] == "\\":
                out.append({"n": "\n", "\\": "\\", '"': '"'}[raw[index + 1]])
                index += 2
            else:
                out.append(raw[index])
                index += 1
        return "".join(out)

    def test_awkward_label_values_round_trip(self):
        for value in self.AWKWARD:
            registry = MetricsRegistry()
            registry.counter("c", path=value).inc()
            (line,) = [line for line
                       in render_prometheus(registry).splitlines()
                       if line.startswith("c{")]
            assert "\n" not in line
            assert self.parse_label(line) == value

    def test_json_document_keeps_label_values_verbatim(self):
        for value in self.AWKWARD:
            registry = MetricsRegistry()
            registry.counter("c", path=value).inc()
            document = render_json(registry)
            assert document["metrics"][0]["series"][0]["labels"] \
                == {"path": value}


class TestExemplars:
    def exemplar_registry(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds", "Latency",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05, exemplar={"trace_id": "t-000001"},
                          timestamp=3.5)
        histogram.observe(9.0, exemplar={"trace_id": "t-000002"})
        return registry

    def test_prometheus_bucket_lines_carry_exemplars(self):
        lines = render_prometheus(self.exemplar_registry()).splitlines()
        assert ('latency_seconds_bucket{le="0.1"} 1 '
                '# {trace_id="t-000001"} 0.05 3.5') in lines
        assert ('latency_seconds_bucket{le="+Inf"} 2 '
                '# {trace_id="t-000002"} 9') in lines

    def test_buckets_without_exemplars_render_plain(self):
        lines = render_prometheus(self.exemplar_registry()).splitlines()
        assert 'latency_seconds_bucket{le="1"} 1' in lines

    def test_json_buckets_carry_exemplars(self):
        document = render_json(self.exemplar_registry())
        buckets = document["metrics"][0]["series"][0]["buckets"]
        assert buckets[0]["exemplar"] == {
            "labels": {"trace_id": "t-000001"}, "value": 0.05,
            "timestamp": 3.5}
        assert "exemplar" not in buckets[1]
        assert buckets[2]["exemplar"]["labels"] == {"trace_id": "t-000002"}
        json.dumps(document)

    def test_exemplar_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(
            0.5, exemplar={"op": 'say "hi"'})
        text = render_prometheus(registry)
        assert r'# {op="say \"hi\""} 0.5' in text


class TestJsonTraces:
    def test_traces_included_when_tracer_given(self):
        obs = Observability(clock=ManualClock(tick=1.0))
        trace = obs.tracer.begin("op")
        with trace.span("stage"):
            pass
        obs.tracer.finish(trace)
        document = obs.export_json()
        assert document["traces"][0]["spans"][0]["name"] == "stage"
        without = obs.export_json(with_traces=False)
        assert "traces" not in without
        json.dumps(document)
