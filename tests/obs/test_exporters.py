"""Tests for the Prometheus text and JSON exporters."""

import json

from repro.obs import (
    ManualClock,
    MetricsRegistry,
    Observability,
    render_json,
    render_prometheus,
)


def sample_registry():
    registry = MetricsRegistry()
    registry.counter("requests_total", "Requests", host="cinder").inc(3)
    registry.gauge("in_flight", "In flight").set(2)
    histogram = registry.histogram("latency_seconds", "Latency",
                                   buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    return registry


class TestPrometheus:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_help_and_type_headers(self):
        text = render_prometheus(sample_registry())
        assert "# HELP requests_total Requests" in text
        assert "# TYPE requests_total counter" in text
        assert "# TYPE in_flight gauge" in text
        assert "# TYPE latency_seconds histogram" in text

    def test_counter_line_with_labels(self):
        text = render_prometheus(sample_registry())
        assert 'requests_total{host="cinder"} 3' in text.splitlines()

    def test_histogram_buckets_are_cumulative(self):
        lines = render_prometheus(sample_registry()).splitlines()
        assert 'latency_seconds_bucket{le="0.1"} 1' in lines
        assert 'latency_seconds_bucket{le="1"} 2' in lines
        assert 'latency_seconds_bucket{le="+Inf"} 3' in lines
        assert 'latency_seconds_count 3' in lines
        assert any(line.startswith("latency_seconds_sum ")
                   for line in lines)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='say "hi"\n').inc()
        text = render_prometheus(registry)
        assert r'path="say \"hi\"\n"' in text

    def test_families_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        text = render_prometheus(registry)
        assert text.index("alpha") < text.index("zeta")


class TestJson:
    def test_document_is_json_serializable(self):
        document = render_json(sample_registry())
        json.dumps(document)

    def test_counter_and_gauge_values(self):
        document = render_json(sample_registry())
        by_name = {family["name"]: family
                   for family in document["metrics"]}
        (series,) = by_name["requests_total"]["series"]
        assert series["labels"] == {"host": "cinder"}
        assert series["value"] == 3
        assert by_name["in_flight"]["series"][0]["value"] == 2

    def test_histogram_summary_and_buckets(self):
        document = render_json(sample_registry())
        by_name = {family["name"]: family
                   for family in document["metrics"]}
        (series,) = by_name["latency_seconds"]["series"]
        assert series["summary"]["count"] == 3
        assert series["buckets"][-1]["le"] == "+Inf"

    def test_traces_included_when_tracer_given(self):
        obs = Observability(clock=ManualClock(tick=1.0))
        trace = obs.tracer.begin("op")
        with trace.span("stage"):
            pass
        obs.tracer.finish(trace)
        document = obs.export_json()
        assert document["traces"][0]["spans"][0]["name"] == "stage"
        without = obs.export_json(with_traces=False)
        assert "traces" not in without
        json.dumps(document)
