"""Tests for the structured wide-event log."""

import io
import json

import pytest

from repro.errors import EventError
from repro.obs import EventLog, ManualClock, WideEvent


def make_log(keep=1024, tick=1.0):
    return EventLog(clock=ManualClock(tick=tick), keep=keep)


class TestEmit:
    def test_emit_assigns_sequence_time_and_fields(self):
        log = make_log(tick=2.0)
        first = log.emit("monitor_request", trace_id="t-1", verdict="valid")
        second = log.emit("transport_retry", host="cinder")
        assert (first.seq, second.seq) == (1, 2)
        assert second.time > first.time
        assert first.get("verdict") == "valid"
        assert second.trace_id is None

    def test_empty_event_type_rejected(self):
        with pytest.raises(EventError):
            make_log().emit("")

    def test_reserved_field_names_rejected(self):
        # "event" and "trace_id" are real parameters of emit(); "seq" and
        # "time" would silently shadow the envelope, so they are refused.
        log = make_log()
        for key in ("seq", "time"):
            with pytest.raises(EventError):
                log.emit("x", **{key: "boom"})

    def test_missing_field_lookup_returns_default(self):
        event = make_log().emit("x", host="cinder")
        assert event.get("missing") is None
        assert event.get("missing", 7) == 7

    def test_to_dict_is_flat_and_json_serializable(self):
        event = make_log().emit("monitor_request", trace_id="t-1",
                                stage_seconds={"forward": 0.25})
        record = event.to_dict()
        assert record["event"] == "monitor_request"
        assert record["trace_id"] == "t-1"
        assert record["stage_seconds"] == {"forward": 0.25}
        json.dumps(record)


class TestRingAndFilter:
    def test_ring_bounds_memory_but_counts_everything(self):
        log = make_log(keep=3)
        for index in range(7):
            log.emit("tick", index=index)
        assert len(log) == 3
        assert log.emitted_count == 7
        assert [event.get("index") for event in log.filter()] == [4, 5, 6]

    def test_filter_by_event_type_and_field(self):
        log = make_log()
        log.emit("a", host="cinder")
        log.emit("b", host="cinder")
        log.emit("a", host="keystone")
        assert len(log.filter(event="a")) == 2
        assert len(log.filter(host="cinder")) == 2
        assert len(log.filter(event="a", host="cinder")) == 1

    def test_filter_by_trace_id(self):
        log = make_log()
        log.emit("a", trace_id="t-1")
        log.emit("a", trace_id="t-2")
        (match,) = log.filter(trace_id="t-2")
        assert match.trace_id == "t-2"

    def test_limit_keeps_most_recent_in_order(self):
        log = make_log()
        for index in range(5):
            log.emit("tick", index=index)
        limited = log.filter(limit=2)
        assert [event.get("index") for event in limited] == [3, 4]

    def test_filter_on_absent_field_matches_nothing(self):
        log = make_log()
        log.emit("a")
        assert log.filter(verdict="valid") == []


class TestCorrelation:
    def test_correlate_stamps_trace_id_on_nested_emits(self):
        log = make_log()
        with log.correlate("t-9"):
            event = log.emit("transport_retry", host="cinder")
        assert event.trace_id == "t-9"
        assert log.emit("after").trace_id is None

    def test_correlate_restores_previous_context(self):
        log = make_log()
        with log.correlate("outer"):
            with log.correlate("inner"):
                assert log.current_trace_id == "inner"
            assert log.current_trace_id == "outer"

    def test_correlation_cleared_on_exception(self):
        log = make_log()
        with pytest.raises(RuntimeError):
            with log.correlate("t-1"):
                raise RuntimeError("boom")
        assert log.current_trace_id is None

    def test_explicit_trace_id_wins_over_context(self):
        log = make_log()
        with log.correlate("ambient"):
            event = log.emit("x", trace_id="explicit")
        assert event.trace_id == "explicit"


class TestExport:
    def test_to_jsonl_is_sorted_one_record_per_line(self):
        log = make_log()
        log.emit("b", zebra=1, alpha=2)
        log.emit("a")
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert list(record) == sorted(record)

    def test_write_jsonl_to_path_and_handle(self, tmp_path):
        log = make_log()
        log.emit("a", host="cinder")
        log.emit("b", host="keystone")
        path = str(tmp_path / "events.jsonl")
        assert log.write_jsonl(path, event="a") == 1
        with open(path, "r", encoding="utf-8") as handle:
            assert json.loads(handle.read())["host"] == "cinder"
        buffer = io.StringIO()
        assert log.write_jsonl(buffer) == 2

    def test_repr_mentions_counts(self):
        log = make_log(keep=1)
        log.emit("a")
        log.emit("b")
        assert "1" in repr(log) and "2" in repr(log)


class TestWideEvent:
    def test_matches_requires_all_criteria(self):
        event = WideEvent(seq=1, event="a", time=0.0, trace_id="t-1",
                          fields={"host": "cinder"})
        assert event.matches(event="a", host="cinder")
        assert not event.matches(event="a", host="keystone")
        assert not event.matches(event="b")
