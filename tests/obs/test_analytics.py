"""Tests for trace analytics: attribution, critical paths, exemplars."""

import json

import pytest

from repro.obs import (
    ManualClock,
    MetricsRegistry,
    Tracer,
    critical_path,
    dominant_stages,
    exemplar_index,
    resolve_exemplars,
    stage_attribution,
    trace_report,
)


def traced_setup():
    """Two finished traces with forward dominating in both."""
    tracer = Tracer(clock=ManualClock(tick=1.0))
    for _ in range(2):
        trace = tracer.begin("monitor")
        with trace.span("pre_eval"):
            pass                       # 1s under the ticking clock
        with trace.span("forward"):
            tracer.clock.advance(3.0)  # 4s
        tracer.finish(trace)
    return tracer


class TestStageAttribution:
    def test_totals_means_and_shares(self):
        report = stage_attribution(traced_setup())
        assert [entry["stage"] for entry in report] == ["forward",
                                                        "pre_eval"]
        forward, pre_eval = report
        assert forward["count"] == 2
        assert forward["seconds"] == pytest.approx(8.0)
        assert forward["mean"] == pytest.approx(4.0)
        assert forward["share"] == pytest.approx(0.8)
        assert pre_eval["share"] == pytest.approx(0.2)

    def test_error_spans_are_counted(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        trace = tracer.begin("monitor")
        with pytest.raises(RuntimeError):
            with trace.span("forward"):
                raise RuntimeError("boom")
        tracer.finish(trace)
        (entry,) = stage_attribution(tracer)
        assert entry["errors"] == 1

    def test_empty_tracer_gives_empty_report(self):
        assert stage_attribution(Tracer(clock=ManualClock())) == []

    def test_accepts_a_plain_trace_list(self):
        tracer = traced_setup()
        assert stage_attribution(list(tracer.finished)) \
            == stage_attribution(tracer)


class TestCriticalPath:
    def test_path_ranked_by_cost_with_dominant(self):
        tracer = traced_setup()
        path = critical_path(tracer.finished[0])
        assert path["dominant"] == "forward"
        assert [step["stage"] for step in path["path"]] == ["forward",
                                                            "pre_eval"]
        assert path["path"][0]["seconds"] == pytest.approx(4.0)
        assert path["trace_id"] == tracer.finished[0].trace_id

    def test_spanless_trace_has_no_dominant(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        trace = tracer.finish(tracer.begin("empty"))
        path = critical_path(trace)
        assert path["dominant"] is None
        assert path["path"] == []

    def test_dominant_stages_histogram(self):
        assert dominant_stages(traced_setup()) == {"forward": 2}


class TestExemplars:
    def make_registry(self, trace_id="t-000001"):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05, exemplar={"trace_id": trace_id},
                          timestamp=1.0)
        histogram.observe(9.0, exemplar={"trace_id": "t-999999"},
                          timestamp=2.0)
        return registry

    def test_index_covers_finite_and_overflow_buckets(self):
        entries = exemplar_index(self.make_registry())
        assert [entry["le"] for entry in entries] == [0.1, "+Inf"]
        assert entries[0]["family"] == "latency_seconds"
        assert entries[0]["exemplar"]["labels"] == {"trace_id": "t-000001"}

    def test_resolve_joins_against_the_ring(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        trace = tracer.finish(tracer.begin("monitor"))
        entries = resolve_exemplars(self.make_registry(trace.trace_id),
                                    tracer)
        resolved, unresolved = entries
        assert resolved["resolved"]
        assert resolved["trace"]["trace_id"] == trace.trace_id
        assert not unresolved["resolved"]
        # An exemplar whose trace is gone (ring-evicted or sampled
        # away) still hands back the id -- marked evicted -- instead of
        # silently dropping the join.
        assert unresolved["trace"] == {"trace_id": "t-999999",
                                       "evicted": True}

    def test_exemplar_without_trace_id_stays_unresolved(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(
            0.5, exemplar={"span": "forward"})
        (entry,) = resolve_exemplars(registry,
                                     Tracer(clock=ManualClock()))
        assert entry["resolved"] is False
        assert "trace" not in entry


class TestTraceReport:
    def test_document_shape_and_serializability(self):
        tracer = traced_setup()
        registry = MetricsRegistry()
        registry.histogram("latency_seconds", buckets=(0.1,)).observe(
            0.05, exemplar={"trace_id": tracer.finished[0].trace_id})
        report = trace_report(registry, tracer)
        assert report["retained"] == 2
        assert report["started"] == 2
        assert report["attribution"][0]["stage"] == "forward"
        assert report["exemplars"][0]["resolved"]
        json.dumps(report)
