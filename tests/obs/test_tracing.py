"""Tests for spans, traces, and the tracer under an injected clock."""

import pytest

from repro.obs import ManualClock, Tracer


def make_tracer(tick=1.0, keep=256):
    return Tracer(clock=ManualClock(tick=tick), keep=keep)


class TestSpans:
    def test_span_durations_are_deterministic(self):
        tracer = make_tracer(tick=1.0)
        trace = tracer.begin("op")          # read 1 -> start=0
        with trace.span("stage"):           # read 2 -> span start=1
            pass                            # read 3 -> span end=2
        assert trace.spans[0].duration == 1.0
        assert trace.spans[0].status == "ok"

    def test_span_records_exception_and_reraises(self):
        tracer = make_tracer()
        trace = tracer.begin("op")
        with pytest.raises(ValueError):
            with trace.span("stage"):
                raise ValueError("boom")
        span = trace.spans[0]
        assert span.status == "error"
        assert span.tags["error"] == "boom"
        assert span.end is not None

    def test_open_span_duration_is_zero(self):
        trace = make_tracer().begin("op")
        span_cm = trace.span("stage")
        assert span_cm.span.duration == 0.0

    def test_span_named_lookup(self):
        trace = make_tracer().begin("op")
        with trace.span("first"):
            pass
        with trace.span("second"):
            pass
        assert trace.span_named("second").name == "second"
        assert trace.span_named("missing") is None


class TestTracer:
    def test_sequential_ids(self):
        tracer = make_tracer()
        assert tracer.begin("a").trace_id == "t-000001"
        assert tracer.begin("b").trace_id == "t-000002"

    def test_finish_sets_end_and_retains(self):
        tracer = make_tracer(tick=2.0)
        trace = tracer.begin("op")
        tracer.finish(trace)
        assert trace.duration == 2.0
        assert tracer.find(trace.trace_id) is trace

    def test_finish_preserves_explicit_end(self):
        tracer = make_tracer(tick=1.0)
        trace = tracer.begin("op")
        trace.end = trace.start + 10.0
        tracer.finish(trace)
        assert trace.duration == 10.0

    def test_ring_buffer_bounds_memory(self):
        tracer = make_tracer(keep=2)
        traces = [tracer.finish(tracer.begin(f"op{i}")) for i in range(5)]
        assert len(tracer.finished) == 2
        assert tracer.find(traces[0].trace_id) is None
        assert tracer.find(traces[4].trace_id) is traces[4]
        assert tracer.started_count == 5

    def test_find_index_stays_in_sync_with_ring_eviction(self):
        # find() is backed by an id->trace index, not a ring scan; every
        # eviction must drop exactly the evicted id.
        tracer = make_tracer(keep=3)
        traces = [tracer.finish(tracer.begin(f"op{i}")) for i in range(10)]
        assert tracer._by_id.keys() \
            == {trace.trace_id for trace in tracer.finished}
        for trace in traces[:7]:
            assert tracer.find(trace.trace_id) is None
        for trace in traces[7:]:
            assert tracer.find(trace.trace_id) is trace

    def test_refinishing_a_trace_does_not_corrupt_the_index(self):
        # finish() is idempotent: a double finish must not occupy two
        # ring slots (eviction of the first would delete an id the ring
        # still holds).
        tracer = make_tracer(keep=2)
        first = tracer.finish(tracer.begin("op"))
        tracer.finish(first)
        tracer.finish(tracer.begin("other"))
        assert len(tracer.finished) == 2
        assert tracer.find(first.trace_id) is first
        tracer.finish(tracer.begin("third"))   # now evicts `first`
        assert tracer.find(first.trace_id) is None

    def test_find_unknown_id_returns_none(self):
        assert make_tracer().find("t-999999") is None

    def test_to_dicts_shape(self):
        tracer = make_tracer()
        trace = tracer.begin("op")
        trace.set_tag("verdict", "valid")
        with trace.span("stage"):
            pass
        tracer.finish(trace)
        (record,) = tracer.to_dicts()
        assert record["trace_id"] == trace.trace_id
        assert record["tags"] == {"verdict": "valid"}
        assert record["spans"][0]["name"] == "stage"
        assert record["spans"][0]["status"] == "ok"
