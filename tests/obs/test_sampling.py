"""Unit and property tests for head/tail trace sampling.

The sampler's contract is reconciliation: forced traces are never
dropped, every finished trace gets exactly one counted decision
(``kept + dropped + forced == begun``), and the decision for a trace id
is a pure function of ``(seed, trace_id)`` -- independent of arrival
order and shard assignment, which is what makes merged fleet counters
equal the single-shard run.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.obs import (
    DECISION_DROPPED,
    DECISION_FORCED,
    DECISION_KEPT,
    EVENTS_SHED_COUNTER,
    MetricsRegistry,
    SAMPLED_COUNTER,
    SamplingOptions,
    TraceSampler,
    merge_registries,
)

trace_ids = st.integers(min_value=1, max_value=10 ** 6).map(
    lambda n: f"t-{n:06d}")
seeds = st.integers(min_value=0, max_value=2 ** 16)
rates = st.sampled_from([0.0, 0.1, 0.25, 0.5, 0.9, 1.0])
verdicts = st.sampled_from(["valid", "invalid-agreed", "violation",
                            "pre-blocked", "indeterminate"])


def sampler(rate=0.5, seed=0, slow_threshold=0.0, metrics=None):
    return TraceSampler(SamplingOptions(rate=rate, seed=seed,
                                        slow_threshold=slow_threshold),
                        metrics=metrics)


class TestOptions:
    def test_rate_must_be_a_probability(self):
        with pytest.raises(ValueError):
            SamplingOptions(rate=1.5)
        with pytest.raises(ValueError):
            SamplingOptions(rate=-0.1)

    def test_slow_threshold_must_be_non_negative(self):
        with pytest.raises(ValueError):
            SamplingOptions(slow_threshold=-1.0)

    def test_defaults(self):
        options = SamplingOptions()
        assert options.rate == 0.1
        assert options.seed == 0
        assert options.slow_threshold == 0.0
        assert options.overhead is True


class TestDecisionClasses:
    def test_non_valid_verdict_is_forced(self):
        assert sampler(rate=0.0).classify("t-000001",
                                          verdict="violation") \
            == DECISION_FORCED

    def test_slow_trace_is_forced(self):
        slow = sampler(rate=0.0, slow_threshold=1.0)
        assert slow.classify("t-000001", duration=1.5) == DECISION_FORCED
        assert slow.classify("t-000001", duration=0.5) != DECISION_FORCED

    def test_zero_threshold_disables_the_slow_class(self):
        assert sampler(rate=0.0).classify("t-000001", duration=9e9) \
            == DECISION_DROPPED

    def test_marked_trace_is_forced(self):
        instance = sampler(rate=0.0)
        instance.mark_forced("t-000002")
        assert instance.classify("t-000002") == DECISION_FORCED
        assert instance.classify("t-000003") == DECISION_DROPPED

    def test_rate_one_keeps_every_healthy_trace(self):
        assert sampler(rate=1.0).classify("t-000001") == DECISION_KEPT

    def test_rate_zero_drops_every_healthy_trace(self):
        assert sampler(rate=0.0).classify("t-000001") == DECISION_DROPPED

    def test_decide_discards_the_forced_mark(self):
        instance = sampler(rate=0.0)
        instance.mark_forced("t-000004")
        assert instance.decide("t-000004") == DECISION_FORCED
        # The mark was consumed: a second decision samples normally.
        assert instance.classify("t-000004") == DECISION_DROPPED


class TestCounters:
    def test_decisions_are_counted_with_labels(self):
        registry = MetricsRegistry()
        instance = sampler(rate=1.0, metrics=registry)
        instance.decide("t-000001")
        instance.decide("t-000002", verdict="violation")
        by_decision = {
            dict(labels)["decision"]: counter.value
            for labels, counter in registry.series(SAMPLED_COUNTER)}
        assert by_decision == {DECISION_KEPT: 1, DECISION_FORCED: 1}

    def test_shed_events_are_counted(self):
        registry = MetricsRegistry()
        instance = sampler(metrics=registry)
        instance.shed_event()
        instance.shed_event()
        assert registry.counter_value(EVENTS_SHED_COUNTER) == 2
        assert instance.stats()["events_shed"] == 2

    def test_stats_shape(self):
        instance = sampler(rate=1.0)
        instance.decide("t-000001")
        assert instance.stats() == {DECISION_KEPT: 1, DECISION_DROPPED: 0,
                                    DECISION_FORCED: 0, "events_shed": 0}


class TestForcedNeverDropped:
    @given(ids=st.lists(trace_ids, min_size=1, max_size=30, unique=True),
           verdict=verdicts.filter(lambda v: v != "valid"),
           rate=rates, seed=seeds)
    @settings(max_examples=150, deadline=None)
    def test_non_valid_verdicts_always_forced(self, ids, verdict, rate,
                                              seed):
        instance = sampler(rate=rate, seed=seed)
        for trace_id in ids:
            assert instance.decide(trace_id, verdict=verdict) \
                == DECISION_FORCED

    @given(ids=st.lists(trace_ids, min_size=1, max_size=30, unique=True),
           rate=rates, seed=seeds)
    @settings(max_examples=150, deadline=None)
    def test_marked_ids_always_forced(self, ids, rate, seed):
        instance = sampler(rate=rate, seed=seed)
        for trace_id in ids:
            instance.mark_forced(trace_id)
        for trace_id in ids:
            assert instance.decide(trace_id) == DECISION_FORCED


class TestReconciliation:
    @given(ids=st.lists(trace_ids, min_size=1, max_size=50, unique=True),
           rate=rates, seed=seeds,
           verdict_picks=st.lists(verdicts, min_size=50, max_size=50))
    @settings(max_examples=150, deadline=None)
    def test_kept_plus_dropped_plus_forced_equals_begun(self, ids, rate,
                                                        seed,
                                                        verdict_picks):
        registry = MetricsRegistry()
        instance = sampler(rate=rate, seed=seed, metrics=registry)
        for index, trace_id in enumerate(ids):
            instance.decide(trace_id, verdict=verdict_picks[index])
        assert instance.decided == len(ids)
        assert sum(instance.decisions.values()) == len(ids)
        assert registry.total(SAMPLED_COUNTER) == len(ids)


class TestMergedRegistries:
    @given(ids=st.lists(trace_ids, min_size=1, max_size=60, unique=True),
           rate=rates, seed=seeds,
           shard_picks=st.lists(st.integers(min_value=0, max_value=3),
                                min_size=60, max_size=60),
           verdict_picks=st.lists(verdicts, min_size=60, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_merged_shard_registries_equal_the_single_run(self, ids, rate,
                                                          seed,
                                                          shard_picks,
                                                          verdict_picks):
        # Partition the ids across four shard-local samplers, then merge
        # their registries: the sampled-decision counters must be
        # byte-identical to one sampler deciding the whole stream.
        single_registry = MetricsRegistry()
        single = sampler(rate=rate, seed=seed, metrics=single_registry)
        registries = [MetricsRegistry() for _ in range(4)]
        shards = [sampler(rate=rate, seed=seed, metrics=registry)
                  for registry in registries]
        for index, trace_id in enumerate(ids):
            single.decide(trace_id, verdict=verdict_picks[index])
            shards[shard_picks[index]].decide(
                trace_id, verdict=verdict_picks[index])
        merged = merge_registries(registries)

        def ledger(registry):
            return sorted((labels, counter.value) for labels, counter
                          in registry.series(SAMPLED_COUNTER))

        assert ledger(merged) == ledger(single_registry)
        assert merged.total(SAMPLED_COUNTER) == len(ids)


class TestDeterminism:
    @given(ids=st.lists(trace_ids, min_size=1, max_size=50, unique=True),
           rate=rates, seed=seeds)
    @settings(max_examples=150, deadline=None)
    def test_same_seed_same_decisions(self, ids, rate, seed):
        first = sampler(rate=rate, seed=seed)
        second = sampler(rate=rate, seed=seed)
        assert [first.decide(i) for i in ids] \
            == [second.decide(i) for i in ids]

    @given(ids=st.lists(trace_ids, min_size=2, max_size=50, unique=True),
           rate=rates, seed=seeds)
    @settings(max_examples=100, deadline=None)
    def test_decisions_are_order_independent(self, ids, rate, seed):
        # The property behind fleet/single-shard counter equality: the
        # decision for an id does not depend on what was decided before
        # it, so any partition of the ids across shards tallies the same.
        forward = sampler(rate=rate, seed=seed)
        backward = sampler(rate=rate, seed=seed)
        by_id = {i: forward.decide(i) for i in ids}
        for trace_id in reversed(ids):
            assert backward.decide(trace_id) == by_id[trace_id]
        assert backward.decisions == forward.decisions

    @given(trace_id=trace_ids, rate=rates, seed=seeds)
    @settings(max_examples=200, deadline=None)
    def test_score_is_a_stable_unit_float(self, trace_id, rate, seed):
        instance = sampler(rate=rate, seed=seed)
        score = instance.score(trace_id)
        assert 0.0 <= score < 1.0
        assert instance.score(trace_id) == score
        assert sampler(rate=rate, seed=seed).score(trace_id) == score
