"""Tests for ObservabilityMiddleware on a plain httpsim application."""

from repro.httpsim import Application, Response, path
from repro.obs import ManualClock, Observability, ObservabilityMiddleware


def make_app(obs):
    app = Application("svc")
    app.add_route(path("items", lambda req: Response.json_response([]),
                       name="items"))
    app.add_middleware(ObservabilityMiddleware(obs, app_name="svc"))
    return app


class TestObservabilityMiddleware:
    def test_counts_by_method_and_status(self):
        obs = Observability(clock=ManualClock(tick=0.001))
        app = make_app(obs)
        app.get("/items")
        app.get("/items")
        app.get("/missing")
        metrics = obs.metrics
        assert metrics.counter_value("http_requests_total", app="svc",
                                     method="GET", status="200") == 2
        assert metrics.counter_value("http_requests_total", app="svc",
                                     method="GET", status="404") == 1

    def test_latency_histogram_uses_injected_clock(self):
        obs = Observability(clock=ManualClock(tick=0.001))
        app = make_app(obs)
        app.get("/items")
        histogram = obs.metrics.get("http_request_seconds", app="svc")
        assert histogram.count == 1
        # start read, end read: exactly one tick apart.
        assert histogram.sum == 0.001

    def test_in_flight_gauge_returns_to_zero(self):
        obs = Observability(clock=ManualClock())
        app = make_app(obs)
        app.get("/items")
        assert obs.metrics.counter_value("http_requests_in_flight",
                                         app="svc") == 0

    def test_two_apps_share_one_registry(self):
        obs = Observability(clock=ManualClock())
        app_a = Application("a")
        app_a.add_route(path("x", lambda req: Response(200), name="x"))
        app_a.add_middleware(ObservabilityMiddleware(obs, app_name="a"))
        app_b = Application("b")
        app_b.add_route(path("x", lambda req: Response(200), name="x"))
        app_b.add_middleware(ObservabilityMiddleware(obs, app_name="b"))
        app_a.get("/x")
        app_b.get("/x")
        app_b.get("/x")
        assert obs.metrics.counter_value("http_requests_total", app="a",
                                         method="GET", status="200") == 1
        assert obs.metrics.counter_value("http_requests_total", app="b",
                                         method="GET", status="200") == 2
