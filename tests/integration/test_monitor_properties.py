"""Property test: the monitor never flags a correct cloud.

The monitor's value hinges on *no false positives*: on an unmutated cloud,
any interleaving of well-formed requests -- through the monitor or around
it (direct cloud calls changing state between monitored requests) -- must
yield zero violation verdicts.  Hypothesis drives random interleavings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.validation import default_setup

USERS = ("alice", "bob", "carol")

#: One step: (via_monitor, user, action) where action is one of the
#: well-formed operations below.
_steps = st.lists(
    st.tuples(st.booleans(), st.sampled_from(USERS),
              st.sampled_from(["post", "get_all", "get_item", "put_item",
                               "delete_item", "attach", "detach"])),
    min_size=1, max_size=25)


def _execute(cloud, monitor, clients, via_monitor, user, action):
    base_direct = "http://cinder/v3/myProject/volumes"
    base_monitored = "http://cmonitor/cmonitor/volumes"
    base = base_monitored if via_monitor else base_direct
    client = clients[user]
    volumes = cloud.cinder.volumes.where(project_id="myProject")
    volume_id = volumes[0]["id"] if volumes else "missing"

    if action == "post":
        client.post(base, {"volume": {"name": "p"}})
    elif action == "get_all":
        client.get(base)
    elif action == "get_item":
        client.get(f"{base}/{volume_id}")
    elif action == "put_item":
        client.put(f"{base}/{volume_id}", {"volume": {"name": "renamed"}})
    elif action == "delete_item":
        client.delete(f"{base}/{volume_id}")
    elif action == "attach":
        # State churn outside the monitor: makes volumes in-use.
        clients["bob"].post(f"{base_direct}/{volume_id}/action",
                            {"os-attach": {"server_id": "s"}})
    elif action == "detach":
        clients["bob"].post(f"{base_direct}/{volume_id}/action",
                            {"os-detach": {}})


class TestNoFalsePositives:
    @given(_steps)
    @settings(max_examples=40, deadline=None)
    def test_random_interleavings_never_violate(self, steps):
        cloud, monitor = default_setup()  # audit mode
        tokens = cloud.paper_tokens()
        clients = {user: cloud.client(token)
                   for user, token in tokens.items()}
        for via_monitor, user, action in steps:
            _execute(cloud, monitor, clients, via_monitor, user, action)
        assert monitor.violations() == [], [
            (str(v.trigger), v.verdict, v.message)
            for v in monitor.violations()]

    @given(_steps)
    @settings(max_examples=20, deadline=None)
    def test_enforcing_mode_no_violations_and_no_shield_gaps(self, steps):
        cloud, monitor = default_setup(enforcing=True)
        tokens = cloud.paper_tokens()
        clients = {user: cloud.client(token)
                   for user, token in tokens.items()}
        for via_monitor, user, action in steps:
            _execute(cloud, monitor, clients, via_monitor, user, action)
        assert monitor.violations() == []
        # Enforcing invariant: a blocked request was never forwarded.
        for verdict in monitor.log:
            if verdict.verdict == "pre-blocked":
                assert not verdict.forwarded
