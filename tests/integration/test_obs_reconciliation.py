"""Metrics must reconcile exactly with the monitor's verdict log.

The observability subsystem is only trustworthy if its counters are an
exact projection of the audit log: same request total, same per-verdict
breakdown, same violation and blocked counts, byte-for-byte the same
snapshot volume.  A randomized (but seeded) workload exercises the whole
Figure-2 pipeline and then the two sides of the ledger are compared.
"""

import collections

import pytest

from repro.obs import ManualClock, Observability
from repro.validation import default_setup
from repro.workloads import WorkloadRunner, make_workload

SEEDS = (7, 42, 1337)


def run_workload(seed, count=40, enforcing=False):
    obs = Observability(clock=ManualClock(tick=1e-4))
    cloud, monitor = default_setup(enforcing=enforcing, observability=obs)
    runner = WorkloadRunner(cloud, monitor)
    runner.execute(make_workload(count, seed=seed), monitored=True)
    return monitor


class TestReconciliation:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_request_total_matches_log_length(self, seed):
        monitor = run_workload(seed)
        assert monitor.obs.metrics.counter_value(
            "monitor_requests_total") == len(monitor.log)
        assert len(monitor.log) > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_per_verdict_counters_match_log(self, seed):
        monitor = run_workload(seed)
        from_log = collections.Counter(v.verdict for v in monitor.log)
        metrics = monitor.obs.metrics
        from_metrics = {
            dict(labels)["verdict"]: counter.value
            for labels, counter in metrics.series("monitor_verdicts_total")
        }
        assert from_metrics == dict(from_log)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_violation_and_blocked_counters(self, seed):
        monitor = run_workload(seed, enforcing=True)
        metrics = monitor.obs.metrics
        assert metrics.counter_value("monitor_violations_total") == \
            len(monitor.violations())
        blocked = sum(1 for v in monitor.log if v.verdict == "pre-blocked")
        assert metrics.counter_value("monitor_blocked_total") == blocked

    @pytest.mark.parametrize("seed", SEEDS)
    def test_snapshot_bytes_reconcile(self, seed):
        monitor = run_workload(seed)
        assert monitor.obs.metrics.counter_value(
            "monitor_snapshot_bytes_total") == \
            sum(v.snapshot_bytes for v in monitor.log)

    def test_stage_histogram_counts_bounded_by_requests(self):
        monitor = run_workload(seed=42)
        total = len(monitor.log)
        for labels, histogram in monitor.obs.metrics.series(
                "monitor_stage_seconds"):
            stage = dict(labels)["stage"]
            assert 0 < histogram.count <= total, stage

    def test_every_verdict_has_a_finished_trace(self):
        monitor = run_workload(seed=7, count=20)
        # Ring buffer default (256) comfortably holds this workload.
        for verdict in monitor.log:
            trace = monitor.obs.tracer.find(verdict.correlation_id)
            assert trace is not None
            assert trace.tags["verdict"] == verdict.verdict

    def test_same_seed_same_counters(self):
        def ledger(monitor):
            metrics = monitor.obs.metrics
            return sorted(
                (labels, counter.value)
                for labels, counter in
                metrics.series("monitor_verdicts_total"))

        assert ledger(run_workload(seed=42)) == ledger(run_workload(seed=42))
