"""Metrics must reconcile exactly with the monitor's verdict log.

The observability subsystem is only trustworthy if its counters are an
exact projection of the audit log: same request total, same per-verdict
breakdown, same violation and blocked counts, byte-for-byte the same
snapshot volume.  A randomized (but seeded) workload exercises the whole
Figure-2 pipeline and then the two sides of the ledger are compared.

With head/tail sampling enabled the ledger gains one more column --
``monitor_traces_sampled_total`` -- and the reconciliation tightens:
decisions must equal verdict rows, dropped traces must leave the ring
and shed their wide event, and a sharded fleet must agree with the
single-shard run everywhere the decision is a pure function of the
trace id.  Only the ``forced`` class is shard-local (each shard's own
exemplar novelty and alarm transitions mark traces), so per-id
decisions may differ between the two runs only when one side forced.
"""

import collections

import pytest

from repro.obs import ManualClock, Observability, SAMPLED_COUNTER
from repro.validation import default_setup
from repro.workloads import WorkloadRunner, make_workload

SEEDS = (7, 42, 1337)


def run_workload(seed, count=40, enforcing=False):
    obs = Observability(clock=ManualClock(tick=1e-4))
    cloud, monitor = default_setup(enforcing=enforcing, observability=obs)
    runner = WorkloadRunner(cloud, monitor)
    runner.execute(make_workload(count, seed=seed), monitored=True)
    return monitor


class TestReconciliation:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_request_total_matches_log_length(self, seed):
        monitor = run_workload(seed)
        assert monitor.obs.metrics.counter_value(
            "monitor_requests_total") == len(monitor.log)
        assert len(monitor.log) > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_per_verdict_counters_match_log(self, seed):
        monitor = run_workload(seed)
        from_log = collections.Counter(v.verdict for v in monitor.log)
        metrics = monitor.obs.metrics
        from_metrics = {
            dict(labels)["verdict"]: counter.value
            for labels, counter in metrics.series("monitor_verdicts_total")
        }
        assert from_metrics == dict(from_log)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_violation_and_blocked_counters(self, seed):
        monitor = run_workload(seed, enforcing=True)
        metrics = monitor.obs.metrics
        assert metrics.counter_value("monitor_violations_total") == \
            len(monitor.violations())
        blocked = sum(1 for v in monitor.log if v.verdict == "pre-blocked")
        assert metrics.counter_value("monitor_blocked_total") == blocked

    @pytest.mark.parametrize("seed", SEEDS)
    def test_snapshot_bytes_reconcile(self, seed):
        monitor = run_workload(seed)
        assert monitor.obs.metrics.counter_value(
            "monitor_snapshot_bytes_total") == \
            sum(v.snapshot_bytes for v in monitor.log)

    def test_stage_histogram_counts_bounded_by_requests(self):
        monitor = run_workload(seed=42)
        total = len(monitor.log)
        for labels, histogram in monitor.obs.metrics.series(
                "monitor_stage_seconds"):
            stage = dict(labels)["stage"]
            assert 0 < histogram.count <= total, stage

    def test_every_verdict_has_a_finished_trace(self):
        monitor = run_workload(seed=7, count=20)
        # Ring buffer default (256) comfortably holds this workload.
        for verdict in monitor.log:
            trace = monitor.obs.tracer.find(verdict.correlation_id)
            assert trace is not None
            assert trace.tags["verdict"] == verdict.verdict

    def test_same_seed_same_counters(self):
        def ledger(monitor):
            metrics = monitor.obs.metrics
            return sorted(
                (labels, counter.value)
                for labels, counter in
                metrics.series("monitor_verdicts_total"))

        assert ledger(run_workload(seed=42)) == ledger(run_workload(seed=42))


def run_sampled(shards, count=24, rate=0.25, seed=3,
                workload_seed=7):
    """One sampled deployment (monitor or fleet) after a seeded replay."""
    from repro.config import (CloudSection, FleetSection, MonitorConfig,
                              MonitorSection, ObservabilitySection,
                              SamplingSection, build_fleet_from_config,
                              build_from_config)
    from repro.workloads import overhead_trace

    config = MonitorConfig(
        cloud=CloudSection(volume_quota=5),
        monitor=MonitorSection(enforcing=True),
        fleet=FleetSection(shards=shards),
        observability=ObservabilitySection(
            clock="manual", tick=1e-4,
            sampling=SamplingSection(enabled=True, rate=rate, seed=seed)))
    if shards == 1:
        cloud, deployment = build_from_config(config)
    else:
        cloud, deployment = build_fleet_from_config(config)
    clients = {user: cloud.client(token)
               for user, token in cloud.paper_tokens().items()}
    trace = overhead_trace(count, seed=workload_seed)
    try:
        clock = (deployment.shards[0].obs.clock
                 if shards > 1 else deployment.obs.clock)
        trace.replay(clients, "cmonitor", clock=clock)
    finally:
        deployment.close()
    return deployment


def sampled_ledger(deployment, shards):
    """The sampling columns of the ledger, fleet and single alike."""
    if shards > 1:
        metrics = deployment.merged_metrics()
        monitors = list(deployment.shards)
    else:
        metrics = deployment.obs.metrics
        monitors = [deployment]
    decisions = {
        dict(labels)["decision"]: int(counter.value)
        for labels, counter in metrics.series(SAMPLED_COUNTER)}
    retained = sorted(trace.trace_id for monitor in monitors
                      for trace in monitor.obs.tracer.finished)
    begun = sum(monitor.obs.tracer.started_count for monitor in monitors)
    return decisions, retained, begun


def decisions_by_id(deployment, shards):
    """Per-trace decision, reconstructed from ring and audit log."""
    monitors = list(deployment.shards) if shards > 1 else [deployment]
    retained = {}
    for monitor in monitors:
        for trace in monitor.obs.tracer.finished:
            retained[trace.trace_id] = trace.tags["sampling_decision"]
    return {verdict.correlation_id:
            retained.get(verdict.correlation_id, "dropped")
            for verdict in deployment.log}


class TestSampledReconciliation:
    def test_decisions_reconcile_with_the_audit_log(self):
        deployment = run_sampled(shards=1)
        decisions, retained, begun = sampled_ledger(deployment, shards=1)
        assert sum(decisions.values()) == begun == len(deployment.log)
        # Dropped traces left the ring; kept and forced ones stayed.
        assert len(retained) \
            == decisions.get("kept", 0) + decisions.get("forced", 0)

    def test_every_non_valid_verdict_keeps_its_trace(self):
        deployment = run_sampled(shards=1)
        non_valid = [v for v in deployment.log if v.verdict != "valid"]
        assert non_valid, "the sampled workload must exercise the tail"
        for verdict in non_valid:
            trace = deployment.obs.tracer.find(verdict.correlation_id)
            assert trace is not None
            assert trace.tags["sampling_decision"] == "forced"

    def test_dropped_traces_shed_their_wide_event(self):
        deployment = run_sampled(shards=1)
        decisions, _retained, _begun = sampled_ledger(deployment, shards=1)
        request_events = deployment.obs.events.to_dicts(
            event="monitor_request")
        assert len(request_events) \
            == decisions.get("kept", 0) + decisions.get("forced", 0)
        assert deployment.sampler.events_shed \
            == decisions.get("dropped", 0)

    @pytest.mark.parametrize("rate", [0.0, 0.25, 1.0])
    def test_fleet_decisions_agree_with_single_shard_up_to_forcing(
            self, rate):
        # The shards share one trace-id allocator and the head coin is a
        # pure function of (seed, id), so fleet and single-shard runs
        # decide every trace identically -- except that forcing marks
        # (exemplar novelty, alarm transitions) live in shard-local
        # state, so the only permitted disagreement is one side forcing
        # a trace the other kept or dropped.
        single = run_sampled(shards=1, rate=rate)
        fleet = run_sampled(shards=4, rate=rate)
        by_id_single = decisions_by_id(single, shards=1)
        by_id_fleet = decisions_by_id(fleet, shards=4)
        assert set(by_id_single) == set(by_id_fleet)
        for trace_id, decision in by_id_single.items():
            other = by_id_fleet[trace_id]
            assert decision == other or "forced" in (decision, other), \
                f"{trace_id}: single={decision} fleet={other}"
        # Both ledgers reconcile against their own audit logs.
        for deployment, shards in ((single, 1), (fleet, 4)):
            decisions, retained, begun = sampled_ledger(deployment, shards)
            assert sum(decisions.values()) == begun == len(deployment.log)
            assert len(retained) == decisions.get("kept", 0) \
                + decisions.get("forced", 0)

    def test_same_seed_fleet_runs_produce_identical_ledgers(self):
        first = run_sampled(shards=4)
        second = run_sampled(shards=4)
        assert sampled_ledger(first, shards=4) \
            == sampled_ledger(second, shards=4)
        assert decisions_by_id(first, shards=4) \
            == decisions_by_id(second, shards=4)
