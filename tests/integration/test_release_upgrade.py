"""The release-upgrade story: frequent cloud changes vs. the monitor.

The paper's motivation: "Since the source code of the Open Source clouds
is often developed in a collaborative manner, it is a subject of frequent
updates.  The updates might introduce or remove a variety of features and
hence, violate the security properties of the previous releases."

Release 2 of the simulated Cinder adds volume snapshots and a new
functional rule (snapshotted volumes cannot be deleted).  These tests pin
the whole lifecycle: the stale monitor *detects the drift* (it flags the
new denial as a violation), the revised model restores agreement, and the
new fault class becomes killable.
"""

import pytest

from repro.cloud import PrivateCloud, SnapshotCheckBypassMutant, paper_mutants
from repro.core import CloudMonitor, Verdict, cinder_behavior_model
from repro.validation import (
    MutationCampaign,
    TestOracle,
    release2_battery,
    release2_setup,
)

MONITOR = "http://cmonitor/cmonitor/volumes"
SNAPSHOTS = "http://cinder/v3/myProject/snapshots"


def snapshot_of(client, volume_id):
    return client.post(SNAPSHOTS, {"snapshot": {"volume_id": volume_id}})


@pytest.fixture()
def release2_cloud():
    cloud = PrivateCloud.paper_setup(release2=True)
    tokens = cloud.paper_tokens()
    clients = {name: cloud.client(token) for name, token in tokens.items()}
    return cloud, clients


class TestRelease2Cloud:
    def test_snapshot_lifecycle(self, release2_cloud):
        cloud, clients = release2_cloud
        vid = clients["bob"].post(
            "http://cinder/v3/myProject/volumes",
            {"volume": {}}).json()["volume"]["id"]
        created = snapshot_of(clients["bob"], vid)
        assert created.status_code == 202
        sid = created.json()["snapshot"]["id"]
        listing = clients["carol"].get(SNAPSHOTS, params={"volume_id": vid})
        assert [s["id"] for s in listing.json()["snapshots"]] == [sid]
        assert clients["alice"].delete(
            f"{SNAPSHOTS}/{sid}").status_code == 204

    def test_snapshotted_volume_undeletable(self, release2_cloud):
        cloud, clients = release2_cloud
        vid = clients["bob"].post(
            "http://cinder/v3/myProject/volumes",
            {"volume": {}}).json()["volume"]["id"]
        snapshot_of(clients["bob"], vid)
        response = clients["alice"].delete(
            f"http://cinder/v3/myProject/volumes/{vid}")
        assert response.status_code == 400
        assert "snapshot" in response.json()["error"]["message"]

    def test_snapshot_authorization(self, release2_cloud):
        cloud, clients = release2_cloud
        vid = clients["bob"].post(
            "http://cinder/v3/myProject/volumes",
            {"volume": {}}).json()["volume"]["id"]
        assert snapshot_of(clients["carol"], vid).status_code == 403
        created = snapshot_of(clients["bob"], vid)
        sid = created.json()["snapshot"]["id"]
        assert clients["bob"].delete(
            f"{SNAPSHOTS}/{sid}").status_code == 403  # admin only

    def test_snapshot_of_missing_volume(self, release2_cloud):
        cloud, clients = release2_cloud
        assert snapshot_of(clients["bob"], "ghost").status_code == 404

    def test_release1_cloud_has_no_snapshots(self):
        cloud = PrivateCloud.paper_setup()  # release 1
        tokens = cloud.paper_tokens()
        client = cloud.client(tokens["bob"])
        assert client.get(SNAPSHOTS).status_code == 404


class TestStaleMonitorDetectsDrift:
    def test_old_model_flags_new_functional_rule(self, release2_cloud):
        # The release-1 monitor does not know about snapshots: its DELETE
        # pre-condition holds for a snapshotted volume, the upgraded cloud
        # denies -- the monitor reports rejected-valid-request.  That is
        # the drift signal telling the analyst the models need updating.
        cloud, clients = release2_cloud
        monitor = CloudMonitor.for_cinder(cloud.network, "myProject",
                                          enforcing=False)
        cloud.network.register("cmonitor", monitor.app)
        vid = clients["bob"].post(
            MONITOR, {"volume": {}}).json()["volume"]["id"]
        snapshot_of(clients["bob"], vid)
        response = clients["alice"].delete(f"{MONITOR}/{vid}")
        assert response.status_code == 502
        assert monitor.log[-1].verdict == Verdict.REJECTED_VALID

    def test_revised_model_restores_agreement(self, release2_cloud):
        cloud, clients = release2_cloud
        monitor = CloudMonitor.for_cinder(
            cloud.network, "myProject",
            machine=cinder_behavior_model(with_snapshots=True),
            enforcing=False)
        cloud.network.register("cmonitor", monitor.app)
        vid = clients["bob"].post(
            MONITOR, {"volume": {}}).json()["volume"]["id"]
        snapshot_of(clients["bob"], vid)
        response = clients["alice"].delete(f"{MONITOR}/{vid}")
        # Both sides now deny: pre is false (snapshots exist), cloud 400.
        assert response.status_code == 400
        assert monitor.log[-1].verdict == Verdict.INVALID_AGREED
        assert monitor.violations() == []

    def test_revised_model_works_against_release1_cloud(self):
        # The snapshot guard degrades gracefully: on release 1 the probe
        # 404s, the binding is undefined, size()=0 holds, DELETE proceeds.
        cloud = PrivateCloud.paper_setup()  # release 1
        tokens = cloud.paper_tokens()
        monitor = CloudMonitor.for_cinder(
            cloud.network, "myProject",
            machine=cinder_behavior_model(with_snapshots=True),
            enforcing=True)
        cloud.network.register("cmonitor", monitor.app)
        bob = cloud.client(tokens["bob"])
        alice = cloud.client(tokens["alice"])
        vid = bob.post(MONITOR, {"volume": {}}).json()["volume"]["id"]
        assert alice.delete(f"{MONITOR}/{vid}").status_code == 204
        assert monitor.violations() == []


class TestRelease2Campaign:
    def test_baseline_clean_with_revised_models(self):
        campaign = MutationCampaign(setup=release2_setup,
                                    battery=release2_battery())
        assert campaign.run_baseline()

    def test_snapshot_mutant_killed_with_revised_models(self):
        campaign = MutationCampaign(setup=release2_setup,
                                    battery=release2_battery())
        result = campaign.run([SnapshotCheckBypassMutant()])
        assert result.kill_rate == 1.0
        assert result.records[0].implicated_requirements == ["1.4"]

    def test_paper_mutants_still_killed_on_release2(self):
        campaign = MutationCampaign(setup=release2_setup,
                                    battery=release2_battery())
        result = campaign.run(paper_mutants())
        assert result.kill_rate == 1.0

    def test_snapshot_mutant_survives_release1_battery(self):
        # Without the snapshot battery step the new fault class is never
        # exercised: model + battery must both evolve with the release.
        from repro.validation import extended_battery

        campaign = MutationCampaign(setup=release2_setup,
                                    battery=extended_battery())
        result = campaign.run([SnapshotCheckBypassMutant()])
        assert result.kill_rate == 0.0
