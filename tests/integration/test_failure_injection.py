"""Failure injection: the monitor against a misbehaving substrate.

The monitor's probes and forwards go over the (virtual) network; these
tests mangle that traffic -- garbage bodies, wrong content shapes, partial
outages -- and assert the monitor degrades to the documented
unreachable-state semantics instead of crashing or mis-flagging.
"""

import pytest

from repro.core import Verdict
from repro.core.monitor import CloudStateProvider
from repro.httpsim import Response
from repro.validation import default_setup


@pytest.fixture()
def setup():
    cloud, monitor = default_setup(enforcing=True)
    tokens = cloud.paper_tokens()
    clients = {name: cloud.client(token) for name, token in tokens.items()}
    return cloud, monitor, clients


def mangle(match_path_suffix, body=b"<html>garbage"):
    def hook(request):
        if request.method == "GET" and \
                request.path.endswith(match_path_suffix):
            return Response(200, body)
        return None

    return hook


class TestMalformedProbeBodies:
    def test_garbage_volume_listing_flagged_not_500(self, setup):
        cloud, monitor, clients = setup
        cloud.network.inject_fault("cinder", mangle("volumes"))
        response = clients["bob"].post("http://cmonitor/cmonitor/volumes",
                                       {"volume": {}})
        # The garbage listing reads as "no volumes": the POST pre-condition
        # holds, the cloud accepts, but the post-probe cannot witness the
        # new volume -- a post-violation (the monitor cannot verify the
        # effect), and crucially never an unhandled 500.
        assert response.status_code == 502
        assert monitor.log[-1].verdict == Verdict.POST_VIOLATION

    def test_non_object_json_body(self, setup):
        cloud, monitor, clients = setup
        cloud.network.inject_fault("cinder", mangle("volumes", b"[1, 2, 3]"))
        response = clients["bob"].post("http://cmonitor/cmonitor/volumes",
                                       {"volume": {}})
        assert response.status_code == 502
        assert monitor.log[-1].verdict == Verdict.POST_VIOLATION

    def test_garbage_identity_body(self, setup):
        cloud, monitor, clients = setup
        cloud.network.inject_fault("keystone", mangle("auth/tokens"))
        response = clients["bob"].post("http://cmonitor/cmonitor/volumes",
                                       {"volume": {}})
        # No identity -> authorization guard cannot hold -> blocked.
        assert response.status_code == 412

    def test_probe_body_helper_contract(self):
        assert CloudStateProvider.probe_body(Response(404, b"{}")) is None
        assert CloudStateProvider.probe_body(Response(200, b"nope")) is None
        assert CloudStateProvider.probe_body(Response(200, b"[1]")) is None
        assert CloudStateProvider.probe_body(
            Response(200, b'{"a": 1}')) == {"a": 1}

    def test_recovery_after_fault_cleared(self, setup):
        cloud, monitor, clients = setup
        cloud.network.inject_fault("cinder", mangle("volumes"))
        assert clients["bob"].post("http://cmonitor/cmonitor/volumes",
                                   {"volume": {}}).status_code == 502
        cloud.network.clear_fault("cinder")
        assert clients["bob"].post("http://cmonitor/cmonitor/volumes",
                                   {"volume": {}}).status_code == 202
        assert monitor.log[-1].verdict == Verdict.VALID


class TestAuditModeUnderFaults:
    def test_audit_mode_garbage_probe_no_false_violation(self):
        cloud, monitor = default_setup(enforcing=False)
        tokens = cloud.paper_tokens()
        bob = cloud.client(tokens["bob"])
        # Only the monitor's probe path is mangled; the forwarded POST
        # still reaches the real (correct) Cinder.  The pre-state looks
        # empty, the cloud accepts, the post-probe cannot witness the
        # volume: a post-violation.  From the monitor's observable
        # evidence that IS the right call -- it cannot verify the effect,
        # and the log localizes the problem to this operation.
        cloud.network.inject_fault(
            "cinder",
            lambda request: (Response(200, b"junk")
                             if request.method == "GET"
                             and request.path.endswith("volumes")
                             else None))
        response = bob.post("http://cmonitor/cmonitor/volumes",
                            {"volume": {}})
        assert response.status_code == 502
        assert monitor.log[-1].verdict == Verdict.POST_VIOLATION

    def test_flaky_cloud_intermittent(self):
        cloud, monitor = default_setup(enforcing=True)
        tokens = cloud.paper_tokens()
        bob = cloud.client(tokens["bob"])
        calls = {"n": 0}

        def flaky(request):
            calls["n"] += 1
            if calls["n"] % 5 == 0:
                return Response.error(503, "hiccup")
            return None

        cloud.network.inject_fault("cinder", flaky)
        codes = set()
        for _ in range(6):
            codes.add(bob.get("http://cmonitor/cmonitor/volumes")
                      .status_code)
        # Some succeed, some get blocked/refused -- but never a 500 and
        # never a violation verdict against the correct cloud.
        assert 500 not in codes
        assert monitor.violations() == []
