"""End-to-end pipeline tests: models -> XMI -> contracts -> monitor -> kill.

These cross-module tests exercise the same path a user of the tool walks:
export models, re-import them, generate everything from the *parsed*
models, and validate a live (simulated) cloud with the result.
"""

import pytest

from repro.cloud import PrivateCloud, paper_mutants
from repro.core import (
    CloudMonitor,
    ContractGenerator,
    cinder_behavior_model,
    cinder_resource_model,
)
from repro.core.codegen import generate_project
from repro.httpsim import curl
from repro.uml import read_xmi, write_xmi
from repro.validation import MutationCampaign, TestOracle, default_setup


class TestXmiToMonitorPipeline:
    """The full Figure-4 chain, with XMI in the middle."""

    @pytest.fixture(scope="class")
    def parsed_models(self):
        document = write_xmi(cinder_resource_model(),
                             cinder_behavior_model(), "Cinder")
        return read_xmi(document)

    def test_contracts_from_parsed_models_match_direct(self, parsed_models):
        diagram, machine = parsed_models
        from_parsed = ContractGenerator(machine, diagram).for_trigger(
            "DELETE(volume)")
        direct = ContractGenerator(
            cinder_behavior_model(),
            cinder_resource_model()).for_trigger("DELETE(volume)")
        assert from_parsed.precondition == direct.precondition
        assert from_parsed.postcondition == direct.postcondition

    def test_monitor_from_parsed_models_kills_mutants(self, parsed_models):
        diagram, machine = parsed_models

        def setup():
            cloud = PrivateCloud.paper_setup()
            monitor = CloudMonitor.for_cinder(
                cloud.network, "myProject", machine=machine,
                diagram=diagram, enforcing=False)
            cloud.network.register("cmonitor", monitor.app)
            return cloud, monitor

        result = MutationCampaign(setup=setup).run(paper_mutants())
        assert result.kill_rate == 1.0

    def test_codegen_from_parsed_models(self, parsed_models, tmp_path):
        diagram, machine = parsed_models
        project = generate_project("cm", diagram, machine)
        project.write_to(str(tmp_path))
        assert (tmp_path / "cm" / "views.py").exists()


class TestCurlDrivenSession:
    """The Section VI usage: cURL commands against the running monitor."""

    def test_paper_style_session(self):
        cloud, monitor = default_setup(enforcing=True)
        tokens = cloud.paper_tokens()

        create = curl(
            cloud.network,
            f"curl -X POST -H 'X-Auth-Token: {tokens['bob']}' "
            f"-d '{{\"volume\": {{\"name\": \"c1\"}}}}' "
            f"http://cmonitor/cmonitor/volumes")
        assert create.status_code == 202
        volume_id = create.json()["volume"]["id"]

        listing = curl(
            cloud.network,
            f"curl -H 'X-Auth-Token: {tokens['carol']}' "
            f"http://cmonitor/cmonitor/volumes")
        assert listing.status_code == 200
        assert len(listing.json()["volumes"]) == 1

        denied = curl(
            cloud.network,
            f"curl -X DELETE -H 'X-Auth-Token: {tokens['carol']}' "
            f"http://cmonitor/cmonitor/volumes/{volume_id}")
        assert denied.status_code == 412

        deleted = curl(
            cloud.network,
            f"curl -X DELETE -H 'X-Auth-Token: {tokens['alice']}' "
            f"http://cmonitor/cmonitor/volumes/{volume_id}")
        assert deleted.status_code == 204
        assert monitor.violations() == []


class TestMonitorAgainstDegradedCloud:
    """Failure injection: the monitor vs. an unreachable / flaky cloud."""

    def test_unreachable_cinder_blocks_preconditions(self):
        cloud, monitor = default_setup(enforcing=True)
        tokens = cloud.paper_tokens()
        bob = cloud.client(tokens["bob"])
        cloud.network.unregister("cinder")
        # Probes fail -> project state undefined -> pre-condition false ->
        # the monitor blocks instead of forwarding into the void.
        response = bob.post("http://cmonitor/cmonitor/volumes",
                            {"volume": {}})
        assert response.status_code == 412

    def test_cinder_outage_mid_session(self):
        from repro.httpsim import Response

        cloud, monitor = default_setup(enforcing=False)
        tokens = cloud.paper_tokens()
        bob = cloud.client(tokens["bob"])
        volume_id = bob.post("http://cmonitor/cmonitor/volumes",
                             {"volume": {}}).json()["volume"]["id"]
        cloud.network.inject_fault(
            "cinder", lambda request: Response.error(503, "maintenance"))
        response = bob.get(f"http://cmonitor/cmonitor/volumes/{volume_id}")
        # Probes see 503 -> state undefined -> pre false; the cloud also
        # fails the forwarded request: both agree, no false violation.
        assert response.status_code in (502, 503)
        last = monitor.log[-1]
        assert last.verdict in ("invalid-agreed", "pre-blocked")

    def test_keystone_outage_renders_requests_unauthenticated(self):
        cloud, monitor = default_setup(enforcing=True)
        tokens = cloud.paper_tokens()
        alice = cloud.client(tokens["alice"])
        cloud.network.unregister("keystone")
        response = alice.get("http://cmonitor/cmonitor/volumes")
        # Without identity, the authorization guard cannot hold.
        assert response.status_code == 412


class TestMultiServiceCloud:
    """Nova and Cinder interact: attachment state drives DELETE contracts."""

    def test_attach_via_nova_blocks_monitored_delete(self):
        cloud, monitor = default_setup(enforcing=True)
        tokens = cloud.paper_tokens()
        bob = cloud.client(tokens["bob"])
        alice = cloud.client(tokens["alice"])

        volume_id = bob.post("http://cmonitor/cmonitor/volumes",
                             {"volume": {}}).json()["volume"]["id"]
        server_id = bob.post("http://nova/v3/myProject/servers",
                             {"server": {"name": "s"}}).json()["server"]["id"]
        bob.post(f"http://nova/v3/myProject/servers/{server_id}"
                 f"/volume_attachments",
                 {"volumeAttachment": {"volumeId": volume_id}})

        blocked = alice.delete(f"http://cmonitor/cmonitor/volumes/{volume_id}")
        assert blocked.status_code == 412

        bob.delete(f"http://nova/v3/myProject/servers/{server_id}"
                   f"/volume_attachments/{volume_id}")
        allowed = alice.delete(f"http://cmonitor/cmonitor/volumes/{volume_id}")
        assert allowed.status_code == 204
        assert monitor.violations() == []

    def test_oracle_run_with_nova_churn_stays_clean(self):
        cloud, monitor = default_setup()
        tokens = cloud.paper_tokens()
        bob = cloud.client(tokens["bob"])
        server_id = bob.post("http://nova/v3/myProject/servers",
                             {"server": {"name": "s"}}).json()["server"]["id"]
        oracle = TestOracle(cloud, monitor)
        oracle.run()
        assert monitor.violations() == []
